// The paper's central claim, tested end-to-end: Inc-uSR (Algorithm 1) and
// Inc-SR (Algorithm 2) update SimRank exactly — after any unit update or
// sequence of updates, the maintained S equals the matrix-form batch
// recomputation on the new graph (run to the fixed point), and the pruned
// and unpruned algorithms agree with each other bit-for-bit in structure.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "core/inc_sr.h"
#include "core/inc_usr.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "graph/update_stream.h"
#include "simrank/batch_matrix.h"

namespace incsr {
namespace {

using core::DynamicSimRank;
using core::UpdateAlgorithm;
using graph::DynamicDiGraph;
using graph::EdgeUpdate;
using graph::UpdateKind;
using simrank::SimRankOptions;

// Converged options: K chosen so the truncation bound C^(K+1) < 1e-13.
SimRankOptions Converged(double damping = 0.6) {
  SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

DynamicDiGraph SmallCitationGraph() {
  // 8-node graph with a mix of degrees, an isolated node (7), and a
  // zero-in-degree node (0).
  DynamicDiGraph g(8);
  for (auto [s, d] : std::initializer_list<std::pair<int, int>>{
           {0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 1}, {4, 2}, {4, 5},
           {5, 6}, {6, 4}, {1, 6}}) {
    INCSR_CHECK(g.AddEdge(s, d).ok(), "test graph edge (%d,%d)", s, d);
  }
  INCSR_CHECK(g.num_edges() == 10, "unexpected test graph size");
  return g;
}

TEST(IncUsrExactness, SingleInsertionMatchesBatch) {
  DynamicDiGraph g = SmallCitationGraph();
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);

  EdgeUpdate update{UpdateKind::kInsert, 3, 5};  // target in-degree 1 -> 2
  ASSERT_TRUE(core::IncUsrApplyUpdate(update, options, &g, &q, &s).ok());

  la::DenseMatrix expected = simrank::BatchMatrix(g, options);
  EXPECT_LT(la::MaxAbsDiff(s, expected), 1e-10);
}

TEST(IncUsrExactness, InsertionIntoZeroInDegreeTarget) {
  DynamicDiGraph g = SmallCitationGraph();
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);

  EdgeUpdate update{UpdateKind::kInsert, 2, 0};  // node 0 has d_j = 0
  ASSERT_TRUE(core::IncUsrApplyUpdate(update, options, &g, &q, &s).ok());
  EXPECT_LT(la::MaxAbsDiff(s, simrank::BatchMatrix(g, options)), 1e-10);
}

TEST(IncUsrExactness, DeletionMatchesBatch) {
  DynamicDiGraph g = SmallCitationGraph();
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);

  EdgeUpdate update{UpdateKind::kDelete, 0, 2};  // target in-degree 3 -> 2
  ASSERT_TRUE(core::IncUsrApplyUpdate(update, options, &g, &q, &s).ok());
  EXPECT_LT(la::MaxAbsDiff(s, simrank::BatchMatrix(g, options)), 1e-10);
}

TEST(IncUsrExactness, DeletionToZeroInDegree) {
  DynamicDiGraph g = SmallCitationGraph();
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);

  EdgeUpdate update{UpdateKind::kDelete, 0, 1};  // d_j = 2 ... first drop to 1
  ASSERT_TRUE(core::IncUsrApplyUpdate(update, options, &g, &q, &s).ok());
  EXPECT_LT(la::MaxAbsDiff(s, simrank::BatchMatrix(g, options)), 1e-10);

  update = {UpdateKind::kDelete, 3, 1};  // now d_j = 1 -> 0
  ASSERT_TRUE(core::IncUsrApplyUpdate(update, options, &g, &q, &s).ok());
  EXPECT_LT(la::MaxAbsDiff(s, simrank::BatchMatrix(g, options)), 1e-10);
}

TEST(IncSrExactness, MatchesIncUsrAndBatchOnUpdateSequence) {
  DynamicDiGraph g_pruned = SmallCitationGraph();
  DynamicDiGraph g_dense = SmallCitationGraph();
  SimRankOptions options = Converged();

  la::DenseMatrix s_pruned = simrank::BatchMatrix(g_pruned, options);
  la::DenseMatrix s_dense = s_pruned;
  la::DynamicRowMatrix q_pruned = graph::BuildTransition(g_pruned);
  la::DynamicRowMatrix q_dense = graph::BuildTransition(g_dense);
  core::IncSrEngine engine(options);

  std::vector<EdgeUpdate> updates = {
      {UpdateKind::kInsert, 3, 5}, {UpdateKind::kInsert, 6, 2},
      {UpdateKind::kDelete, 0, 2}, {UpdateKind::kInsert, 5, 0},
      {UpdateKind::kDelete, 3, 5}, {UpdateKind::kInsert, 2, 4},
  };
  for (const EdgeUpdate& update : updates) {
    ASSERT_TRUE(
        engine.ApplyUpdate(update, &g_pruned, &q_pruned, &s_pruned).ok())
        << graph::ToString(update);
    ASSERT_TRUE(
        core::IncUsrApplyUpdate(update, options, &g_dense, &q_dense, &s_dense)
            .ok())
        << graph::ToString(update);
    // Pruning is lossless: the two engines agree essentially to rounding.
    EXPECT_LT(la::MaxAbsDiff(s_pruned, s_dense), 1e-12)
        << "after " << graph::ToString(update);
  }
  la::DenseMatrix expected = simrank::BatchMatrix(g_pruned, options);
  EXPECT_LT(la::MaxAbsDiff(s_pruned, expected), 1e-9);
}

struct RandomCase {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t edges;
  double damping;
};

class RandomGraphExactness : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomGraphExactness, MixedUpdatesStayExact) {
  const RandomCase param = GetParam();
  auto stream =
      graph::ErdosRenyiGnm(param.nodes, param.edges, param.seed);
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g =
      graph::MaterializeGraph(param.nodes, stream.value());
  SimRankOptions options = Converged(param.damping);

  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  core::IncSrEngine engine(options);

  Rng rng(param.seed ^ 0xABCDEF);
  for (int round = 0; round < 8; ++round) {
    EdgeUpdate update;
    if (g.num_edges() > 0 && rng.NextBernoulli(0.4)) {
      auto deletions = graph::SampleDeletions(g, 1, &rng);
      ASSERT_TRUE(deletions.ok());
      update = deletions.value()[0];
    } else {
      auto insertions = graph::SampleInsertions(g, 1, &rng);
      ASSERT_TRUE(insertions.ok());
      update = insertions.value()[0];
    }
    ASSERT_TRUE(engine.ApplyUpdate(update, &g, &q, &s).ok())
        << graph::ToString(update);
  }
  la::DenseMatrix expected = simrank::BatchMatrix(g, options);
  EXPECT_LT(la::MaxAbsDiff(s, expected), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphExactness,
    ::testing::Values(RandomCase{1, 12, 30, 0.6}, RandomCase{2, 20, 60, 0.6},
                      RandomCase{3, 20, 25, 0.8}, RandomCase{4, 30, 120, 0.6},
                      RandomCase{5, 16, 40, 0.4}, RandomCase{6, 25, 50, 0.7},
                      RandomCase{7, 40, 80, 0.6}, RandomCase{8, 10, 70, 0.6}));

TEST(DynamicSimRankApi, CreateInsertQueryDelete) {
  auto index_result = DynamicSimRank::Create(SmallCitationGraph(), Converged());
  ASSERT_TRUE(index_result.ok());
  DynamicSimRank& index = index_result.value();

  EXPECT_DOUBLE_EQ(index.Score(7, 7), 1.0 - index.options().damping);
  ASSERT_TRUE(index.InsertEdge(3, 5).ok());
  EXPECT_TRUE(index.graph().HasEdge(3, 5));
  ASSERT_TRUE(index.DeleteEdge(3, 5).ok());
  EXPECT_FALSE(index.graph().HasEdge(3, 5));

  // Insert + delete returns to the original scores (the update is exact in
  // both directions).
  auto fresh = DynamicSimRank::Create(SmallCitationGraph(), Converged());
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(la::MaxAbsDiff(index.scores(), fresh->scores()), 1e-9);
}

TEST(DynamicSimRankApi, RejectsInvalidUpdates) {
  auto index = DynamicSimRank::Create(SmallCitationGraph(), SimRankOptions{});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->InsertEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(index->DeleteEdge(3, 5).code(), StatusCode::kNotFound);
  EXPECT_EQ(index->InsertEdge(0, 99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(index->DeleteEdge(-1, 0).code(), StatusCode::kOutOfRange);
  // Failed updates must not corrupt state.
  auto fresh = DynamicSimRank::Create(SmallCitationGraph(), SimRankOptions{});
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(la::MaxAbsDiff(index->scores(), fresh->scores()), 0.0 + 1e-15);
}

TEST(DynamicSimRankApi, BatchDecomposesIntoUnitUpdates) {
  auto index = DynamicSimRank::Create(SmallCitationGraph(), Converged());
  ASSERT_TRUE(index.ok());
  std::vector<EdgeUpdate> batch = {{UpdateKind::kInsert, 3, 5},
                                   {UpdateKind::kInsert, 7, 0},
                                   {UpdateKind::kDelete, 4, 5}};
  ASSERT_TRUE(index->ApplyBatch(batch).ok());

  DynamicDiGraph expected_graph = SmallCitationGraph();
  ASSERT_TRUE(graph::ApplyUpdates(batch, &expected_graph).ok());
  EXPECT_EQ(index->graph().Edges(), expected_graph.Edges());
  la::DenseMatrix expected = simrank::BatchMatrix(expected_graph, Converged());
  EXPECT_LT(la::MaxAbsDiff(index->scores(), expected), 1e-8);
}

TEST(DynamicSimRankApi, AddNodeExtension) {
  auto index = DynamicSimRank::Create(SmallCitationGraph(), Converged());
  ASSERT_TRUE(index.ok());
  graph::NodeId fresh = index->AddNode();
  EXPECT_EQ(fresh, 8);
  EXPECT_DOUBLE_EQ(index->Score(fresh, fresh), 1.0 - index->options().damping);
  EXPECT_DOUBLE_EQ(index->Score(fresh, 0), 0.0);

  // The grown index stays exact under further updates.
  ASSERT_TRUE(index->InsertEdge(0, fresh).ok());
  ASSERT_TRUE(index->InsertEdge(1, fresh).ok());
  la::DenseMatrix expected = simrank::BatchMatrix(index->graph(), Converged());
  EXPECT_LT(la::MaxAbsDiff(index->scores(), expected), 1e-9);
}

TEST(DynamicSimRankApi, TopKPairsOrdersByScore) {
  auto index = DynamicSimRank::Create(SmallCitationGraph(), SimRankOptions{});
  ASSERT_TRUE(index.ok());
  auto top = index->TopKPairs(5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t k = 1; k < top.size(); ++k) {
    EXPECT_GE(top[k - 1].score, top[k].score);
  }
  // Every returned pair must carry its true score and a < b.
  for (const auto& pair : top) {
    EXPECT_LT(pair.a, pair.b);
    EXPECT_DOUBLE_EQ(pair.score, index->Score(pair.a, pair.b));
  }
}

TEST(DynamicSimRankApi, TopKForExcludesQueryNode) {
  auto index = DynamicSimRank::Create(SmallCitationGraph(), SimRankOptions{});
  ASSERT_TRUE(index.ok());
  auto top = index->TopKFor(2, 3);
  ASSERT_EQ(top.size(), 3u);
  for (const auto& pair : top) {
    EXPECT_EQ(pair.a, 2);
    EXPECT_NE(pair.b, 2);
  }
  EXPECT_GE(top[0].score, top[1].score);
}

TEST(IncSrStats, AffectedAreaIsBoundedAndTracked) {
  auto index = DynamicSimRank::Create(SmallCitationGraph(), SimRankOptions{},
                                      UpdateAlgorithm::kIncSR);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->InsertEdge(3, 5).ok());
  const core::AffectedAreaStats& stats = index->last_update_stats();
  ASSERT_EQ(stats.a_sizes.size(),
            static_cast<std::size_t>(index->options().iterations) + 1);
  EXPECT_EQ(stats.a_sizes[0], 1u);  // A₀ = {j}
  EXPECT_EQ(stats.num_nodes, 8u);
  EXPECT_GT(stats.PrunedFraction(), 0.0);
  EXPECT_LE(stats.AffectedFraction(), 1.0);
}

}  // namespace
}  // namespace incsr
