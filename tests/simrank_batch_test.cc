// Tests for the batch SimRank algorithms: agreement between the naive
// Jeh-Widom iteration and the partial-sums optimization, matrix-form
// invariants, convergence behaviour, and the path-counting interpretation
// (Corollary 1 / Eq. 34) that underpins the pruning theory.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "simrank/batch_matrix.h"
#include "simrank/batch_naive.h"
#include "simrank/batch_partial_sums.h"

namespace incsr::simrank {
namespace {

using graph::DynamicDiGraph;

DynamicDiGraph PaperStyleGraph() {
  DynamicDiGraph g(6);
  for (auto [s, d] : std::initializer_list<std::pair<int, int>>{
           {0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 0}, {2, 5}, {5, 3}}) {
    INCSR_CHECK(g.AddEdge(s, d).ok(), "edge (%d,%d)", s, d);
  }
  return g;
}

TEST(BatchNaive, HandComputedTwoNodeExample) {
  // Nodes {0,1} both cited by node 2: after one iteration
  // s(0,1) = C/(1·1) · s(2,2) = C.
  DynamicDiGraph g(3);
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  SimRankOptions options;
  options.damping = 0.8;
  options.iterations = 1;
  la::DenseMatrix s = BatchNaive(g, options);
  EXPECT_DOUBLE_EQ(s(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(s(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(s(0, 2), 0.0);  // node 2 has no in-neighbors
}

TEST(BatchNaive, ScoresAreSymmetricBoundedAndUnitDiagonal) {
  la::DenseMatrix s = BatchNaive(PaperStyleGraph(), {});
  EXPECT_TRUE(s.IsSymmetric(1e-14));
  for (std::size_t i = 0; i < s.rows(); ++i) {
    EXPECT_DOUBLE_EQ(s(i, i), 1.0);
    for (std::size_t j = 0; j < s.cols(); ++j) {
      EXPECT_GE(s(i, j), 0.0);
      EXPECT_LE(s(i, j), 1.0);
    }
  }
}

TEST(BatchPartialSums, MatchesNaiveExactly) {
  // The Lizorkin optimization is a pure refactoring of the same iteration:
  // results agree to rounding on arbitrary graphs.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto stream = graph::ErdosRenyiGnm(18, 60, seed);
    ASSERT_TRUE(stream.ok());
    DynamicDiGraph g = graph::MaterializeGraph(18, stream.value());
    SimRankOptions options;
    options.iterations = 8;
    EXPECT_LT(
        la::MaxAbsDiff(BatchNaive(g, options), BatchPartialSums(g, options)),
        1e-12)
        << "seed " << seed;
  }
}

TEST(BatchPartialSums, HandlesSinksAndSources) {
  DynamicDiGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());  // node 0: source, node 3: isolated
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  SimRankOptions options;
  la::DenseMatrix s = BatchPartialSums(g, options);
  EXPECT_DOUBLE_EQ(s(3, 3), 1.0);   // iterative form: diag always 1
  EXPECT_DOUBLE_EQ(s(0, 3), 0.0);
  EXPECT_LT(la::MaxAbsDiff(s, BatchNaive(g, options)), 1e-14);
}

TEST(BatchMatrix, SatisfiesFixedPointEquation) {
  DynamicDiGraph g = PaperStyleGraph();
  SimRankOptions options;
  options.iterations = 80;  // converged
  la::DenseMatrix s = BatchMatrix(g, options);
  // S must satisfy S = C·Q·S·Qᵀ + (1−C)·I.
  la::CsrMatrix q = graph::BuildTransitionCsr(g);
  la::DenseMatrix qs = q.MultiplyDense(s);
  la::DenseMatrix qsqt = q.MultiplyDense(qs.Transpose());
  qsqt.Scale(options.damping);
  qsqt.AddScaledIdentity(1.0 - options.damping);
  EXPECT_LT(la::MaxAbsDiff(qsqt.Transpose(), s), 1e-12);
}

TEST(BatchMatrix, MatchesSeriesInterpretation) {
  // Eq. (34): [S]_{a,b} = (1−C)·Σₖ Cᵏ·[Qᵏ(Qᵀ)ᵏ]_{a,b} — the symmetric
  // in-link path interpretation behind the pruning theory.
  DynamicDiGraph g = PaperStyleGraph();
  SimRankOptions options;
  options.damping = 0.7;
  options.iterations = 40;
  la::DenseMatrix s = BatchMatrix(g, options);

  la::DenseMatrix q = graph::BuildTransitionCsr(g).ToDense();
  const std::size_t n = q.rows();
  la::DenseMatrix term = la::DenseMatrix::Identity(n);
  la::DenseMatrix series(n, n);
  double weight = 1.0 - options.damping;
  for (int k = 0; k <= options.iterations; ++k) {
    series.AddScaled(weight, term);
    // term ← Q·term·Qᵀ
    term = la::MultiplyTransposeB(la::Multiply(q, term), q);
    weight *= options.damping;
  }
  EXPECT_LT(la::MaxAbsDiff(s, series), 1e-9);
}

TEST(BatchMatrix, DiagonalOfIsolatedNodeIsOneMinusC) {
  DynamicDiGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  SimRankOptions options;
  la::DenseMatrix s = BatchMatrix(g, options);
  // Matrix form: node 2 (isolated) has [S]_{2,2} = 1 − C, and a node whose
  // single in-neighbor is a source has [S]_{1,1} = (1−C)(1 + C).
  EXPECT_DOUBLE_EQ(s(2, 2), 1.0 - options.damping);
  EXPECT_NEAR(s(1, 1), (1.0 - options.damping) * (1.0 + options.damping),
              1e-12);
}

TEST(BatchMatrix, ConvergenceBoundHolds) {
  DynamicDiGraph g = PaperStyleGraph();
  SimRankOptions coarse;
  coarse.iterations = 6;
  SimRankOptions fine;
  fine.iterations = 80;
  double diff = la::MaxAbsDiff(BatchMatrix(g, coarse), BatchMatrix(g, fine));
  EXPECT_LT(diff, ConvergenceBound(coarse));
}

TEST(BatchMatrix, StructuralZerosStayExact) {
  // Two nodes with no symmetric in-link paths must score exactly 0.0 (not
  // merely small) — the property the Inc-SR pruning relies on.
  DynamicDiGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());  // components {0,1} and {2,3}, 4 isolated
  la::DenseMatrix s = BatchMatrix(g, {});
  EXPECT_EQ(s(1, 3), 0.0);
  EXPECT_EQ(s(0, 2), 0.0);
  EXPECT_EQ(s(0, 4), 0.0);
}

TEST(BatchMatrix, FromTransitionAgreesWithFromGraph) {
  DynamicDiGraph g = PaperStyleGraph();
  SimRankOptions options;
  la::CsrMatrix q = graph::BuildTransitionCsr(g);
  EXPECT_EQ(la::MaxAbsDiff(BatchMatrix(g, options),
                           BatchMatrixFromTransition(q, options)),
            0.0);
}

TEST(ConvergenceBound, MatchesClosedForm) {
  SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 15;
  EXPECT_NEAR(ConvergenceBound(options), std::pow(0.6, 16), 1e-15);
}

}  // namespace
}  // namespace incsr::simrank
