// Tests for the memory-light SimRank queries (single-pair, single-source)
// and the update-stream text format.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "graph/update_stream.h"
#include "simrank/batch_matrix.h"
#include "simrank/queries.h"

namespace incsr::simrank {
namespace {

using graph::DynamicDiGraph;

DynamicDiGraph TestGraph(std::uint64_t seed = 5) {
  auto stream = graph::ErdosRenyiGnm(25, 80, seed);
  INCSR_CHECK(stream.ok(), "generator");
  return graph::MaterializeGraph(25, stream.value());
}

TEST(SinglePairQuery, MatchesAllPairsMatrix) {
  DynamicDiGraph g = TestGraph();
  SimRankOptions options;
  options.iterations = 25;
  la::CsrMatrix q = graph::BuildTransitionCsr(g);
  la::DenseMatrix s = BatchMatrixFromTransition(q, options);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    auto a = static_cast<graph::NodeId>(rng.NextBounded(25));
    auto b = static_cast<graph::NodeId>(rng.NextBounded(25));
    auto score = SinglePairSimRank(q, a, b, options);
    ASSERT_TRUE(score.ok());
    EXPECT_NEAR(score.value(),
                s(static_cast<std::size_t>(a), static_cast<std::size_t>(b)),
                1e-10)
        << "pair (" << a << ", " << b << ")";
  }
}

TEST(SinglePairQuery, GraphOverloadAndDiagonal) {
  DynamicDiGraph g = TestGraph(7);
  SimRankOptions options;
  options.iterations = 20;
  auto self = SinglePairSimRank(g, 3, 3, options);
  ASSERT_TRUE(self.ok());
  la::DenseMatrix s = BatchMatrix(g, options);
  EXPECT_NEAR(self.value(), s(3, 3), 1e-12);
}

TEST(SinglePairQuery, RejectsBadNodes) {
  DynamicDiGraph g = TestGraph();
  EXPECT_EQ(SinglePairSimRank(g, -1, 3).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(SinglePairSimRank(g, 3, 99).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SingleSourceQuery, MatchesAllPairsRow) {
  DynamicDiGraph g = TestGraph(11);
  SimRankOptions options;
  options.iterations = 15;
  la::CsrMatrix q = graph::BuildTransitionCsr(g);
  la::DenseMatrix s = BatchMatrixFromTransition(q, options);
  for (graph::NodeId a : {0, 7, 24}) {
    auto row = SingleSourceSimRank(q, a, options);
    ASSERT_TRUE(row.ok());
    EXPECT_LT(la::MaxAbsDiff(row.value(),
                             s.Row(static_cast<std::size_t>(a))),
              1e-10)
        << "source " << a;
  }
}

TEST(SingleSourceQuery, IsolatedNodeRowIsDeltaScaled) {
  DynamicDiGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  SimRankOptions options;
  auto row = SingleSourceSimRank(graph::BuildTransitionCsr(g), 3, options);
  ASSERT_TRUE(row.ok());
  EXPECT_DOUBLE_EQ(row.value()[3], 1.0 - options.damping);
  EXPECT_DOUBLE_EQ(row.value()[0], 0.0);
}

TEST(UpdateStreamFormat, RoundTrip) {
  std::vector<graph::EdgeUpdate> updates = {
      {graph::UpdateKind::kInsert, 3, 7},
      {graph::UpdateKind::kDelete, 0, 2},
      {graph::UpdateKind::kInsert, 100, 4},
  };
  std::string text = graph::FormatUpdateStream(updates);
  auto parsed = graph::ParseUpdateStream(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), updates);
}

TEST(UpdateStreamFormat, CommentsAndBlanksIgnored) {
  auto parsed = graph::ParseUpdateStream(
      "# churn for day 12\n\n+ 1 2   # new link\n- 2 1\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->at(0).kind, graph::UpdateKind::kInsert);
  EXPECT_EQ(parsed->at(1).kind, graph::UpdateKind::kDelete);
}

TEST(UpdateStreamFormat, CrlfAndTrailingWhitespaceTolerated) {
  // Replay files produced on Windows (CRLF, possibly BOM-prefixed) or
  // classic Mac (lone CR) must parse identically to Unix LF files.
  const std::vector<graph::EdgeUpdate> expected = {
      {graph::UpdateKind::kInsert, 1, 2},
      {graph::UpdateKind::kDelete, 2, 1},
  };
  auto crlf = graph::ParseUpdateStream("+ 1 2\r\n- 2 1\r\n");
  ASSERT_TRUE(crlf.ok());
  EXPECT_EQ(crlf.value(), expected);

  auto cr_only = graph::ParseUpdateStream("+ 1 2\r- 2 1\r");
  ASSERT_TRUE(cr_only.ok());
  EXPECT_EQ(cr_only.value(), expected);

  auto bom = graph::ParseUpdateStream("\xEF\xBB\xBF+ 1 2\r\n- 2 1");
  ASSERT_TRUE(bom.ok());
  EXPECT_EQ(bom.value(), expected);

  auto padded = graph::ParseUpdateStream("+ 1 2  \t\r\n\r\n  - 2 1 \r\n");
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded.value(), expected);

  // Comments and blank lines under CRLF.
  auto commented =
      graph::ParseUpdateStream("# day 12\r\n\r\n+ 1 2 # new\r\n- 2 1\r\n");
  ASSERT_TRUE(commented.ok());
  EXPECT_EQ(commented.value(), expected);
}

TEST(UpdateStreamFormat, MalformedLinesStillRejectedUnderCrlf) {
  EXPECT_EQ(graph::ParseUpdateStream("* 1 2\r\n").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(graph::ParseUpdateStream("+ 1 2 3\r\n").status().code(),
            StatusCode::kIoError);
}

TEST(UpdateStreamFormat, MalformedLinesRejected) {
  EXPECT_EQ(graph::ParseUpdateStream("* 1 2\n").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(graph::ParseUpdateStream("+ 1\n").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(graph::ParseUpdateStream("+ 1 2 3\n").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(graph::ParseUpdateStream("+ -1 2\n").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(graph::ParseUpdateStream("insert 1 2\n").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace incsr::simrank
