// Direct verification of the paper's Theorems against brute-force linear
// algebra:
//   Theorem 1 — ΔQ = u·vᵀ exactly, for all four update cases;
//   Theorems 2-3 — the seed (γ, θ) reproduces T = u·wᵀ + w·uᵀ with
//                  w = Q·S·v + ((vᵀS v)/2)·u, and M solves the rank-one
//                  Sylvester equation;
//   Theorem 4 — Inc-SR touches no node-pair outside the affected areas
//               (its ΔS support), and pruning is lossless.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/inc_sr.h"
#include "core/inc_usr.h"
#include "core/rank_one_update.h"
#include "core/update_seed.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "graph/update_stream.h"
#include "simrank/batch_matrix.h"

namespace incsr::core {
namespace {

using graph::DynamicDiGraph;
using graph::EdgeUpdate;
using graph::UpdateKind;
using simrank::SimRankOptions;

SimRankOptions Converged(double damping = 0.6) {
  SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

DynamicDiGraph RandomGraph(std::size_t n, std::size_t m, std::uint64_t seed) {
  auto stream = graph::ErdosRenyiGnm(n, m, seed);
  INCSR_CHECK(stream.ok(), "generator failed");
  return graph::MaterializeGraph(n, stream.value());
}

// Brute force: ΔQ from rebuilding both transition matrices densely.
la::DenseMatrix BruteDeltaQ(const DynamicDiGraph& before,
                            const EdgeUpdate& update) {
  DynamicDiGraph after = before;
  Status s = update.kind == UpdateKind::kInsert
                 ? after.AddEdge(update.src, update.dst)
                 : after.RemoveEdge(update.src, update.dst);
  INCSR_CHECK(s.ok(), "brute force update failed: %s", s.ToString().c_str());
  la::DenseMatrix dq = graph::BuildTransition(after).ToDense();
  dq.AddScaled(-1.0, graph::BuildTransition(before).ToDense());
  return dq;
}

struct TheoremCase {
  const char* name;
  EdgeUpdate update;
};

class Theorem1Cases : public ::testing::TestWithParam<TheoremCase> {
 protected:
  // Fixed 6-node graph covering all degree regimes:
  //   in-degrees: 0:(none) 1:{0} 2:{0,1} 3:{1,2,4} 4:{3} 5:(none)
  DynamicDiGraph MakeGraph() {
    DynamicDiGraph g(6);
    for (auto [s, d] : std::initializer_list<std::pair<int, int>>{
             {0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {4, 3}, {3, 4}}) {
      INCSR_CHECK(g.AddEdge(s, d).ok(), "edge");
    }
    return g;
  }
};

TEST_P(Theorem1Cases, DeltaQIsExactlyRankOne) {
  const TheoremCase& test_case = GetParam();
  DynamicDiGraph g = MakeGraph();
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  auto rank_one = ComputeRankOneUpdate(q, test_case.update);
  ASSERT_TRUE(rank_one.ok()) << test_case.name;
  la::DenseMatrix uvT = la::DenseMatrix::OuterProduct(
      rank_one->u.ToDense(), rank_one->v.ToDense());
  EXPECT_LT(la::MaxAbsDiff(uvT, BruteDeltaQ(g, test_case.update)), 1e-15)
      << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDegreeRegimes, Theorem1Cases,
    ::testing::Values(
        TheoremCase{"insert_dj0", {UpdateKind::kInsert, 2, 0}},
        TheoremCase{"insert_dj0_into_isolated", {UpdateKind::kInsert, 1, 5}},
        TheoremCase{"insert_dj1", {UpdateKind::kInsert, 0, 4}},
        TheoremCase{"insert_dj2", {UpdateKind::kInsert, 3, 2}},
        TheoremCase{"insert_dj3", {UpdateKind::kInsert, 0, 3}},
        TheoremCase{"delete_dj1", {UpdateKind::kDelete, 0, 1}},
        TheoremCase{"delete_dj1_making_isolated", {UpdateKind::kDelete, 3, 4}},
        TheoremCase{"delete_dj2", {UpdateKind::kDelete, 1, 2}},
        TheoremCase{"delete_dj3", {UpdateKind::kDelete, 2, 3}}),
    [](const ::testing::TestParamInfo<TheoremCase>& info) {
      return info.param.name;
    });

TEST(Theorem1, RandomizedAgainstBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    DynamicDiGraph g = RandomGraph(12, 30, 1000 + trial);
    la::DynamicRowMatrix q = graph::BuildTransition(g);
    EdgeUpdate update;
    if (rng.NextBernoulli(0.5)) {
      auto ins = graph::SampleInsertions(g, 1, &rng);
      ASSERT_TRUE(ins.ok());
      update = ins.value()[0];
    } else {
      auto del = graph::SampleDeletions(g, 1, &rng);
      ASSERT_TRUE(del.ok());
      update = del.value()[0];
    }
    auto rank_one = ComputeRankOneUpdate(q, update);
    ASSERT_TRUE(rank_one.ok()) << graph::ToString(update);
    la::DenseMatrix uvT = la::DenseMatrix::OuterProduct(
        rank_one->u.ToDense(), rank_one->v.ToDense());
    EXPECT_LT(la::MaxAbsDiff(uvT, BruteDeltaQ(g, update)), 1e-15)
        << graph::ToString(update);
  }
}

TEST(Theorem1, USupportedOnTargetVSupportedOnSourceAndOldRow) {
  DynamicDiGraph g = RandomGraph(10, 25, 5);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  Rng rng(6);
  auto ins = graph::SampleInsertions(g, 1, &rng);
  ASSERT_TRUE(ins.ok());
  const EdgeUpdate update = ins.value()[0];
  auto rank_one = ComputeRankOneUpdate(q, update);
  ASSERT_TRUE(rank_one.ok());
  // u lives on {j} only.
  ASSERT_EQ(rank_one->u.nnz(), 1u);
  EXPECT_EQ(rank_one->u.indices()[0], update.dst);
  // v lives on {i} ∪ I_old(j).
  for (std::size_t k = 0; k < rank_one->v.nnz(); ++k) {
    std::int32_t idx = rank_one->v.indices()[k];
    EXPECT_TRUE(idx == update.src || q.At(update.dst, idx) != 0.0);
  }
}

TEST(Theorems23, SeedReproducesTMatrix) {
  // T = u·wᵀ + w·uᵀ with w = Q·z + (γ/2)·u, z = S·v, γ = vᵀ·z (Eq. 23-24),
  // and the dense seed's θ must satisfy u·wᵀ = e_j·θᵀ.
  DynamicDiGraph g = RandomGraph(14, 40, 77);
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);

  Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    EdgeUpdate update;
    if (rng.NextBernoulli(0.5) && g.num_edges() > 0) {
      auto del = graph::SampleDeletions(g, 1, &rng);
      ASSERT_TRUE(del.ok());
      update = del.value()[0];
    } else {
      auto ins = graph::SampleInsertions(g, 1, &rng);
      ASSERT_TRUE(ins.ok());
      update = ins.value()[0];
    }
    auto seed = ComputeUpdateSeed(q, s, update, options);
    ASSERT_TRUE(seed.ok()) << graph::ToString(update);

    // Brute-force w from the definitions.
    la::Vector v = seed->rank_one.v.ToDense();
    la::Vector u = seed->rank_one.u.ToDense();
    la::Vector z = s.Multiply(v);  // S symmetric: S·v
    double gamma = la::Dot(v, z);
    la::Vector w = q.Multiply(z);
    w.Axpy(gamma / 2.0, u);
    EXPECT_NEAR(seed->gamma, gamma, 1e-9) << graph::ToString(update);

    // u·wᵀ must equal e_j·θᵀ.
    la::DenseMatrix lhs = la::DenseMatrix::OuterProduct(u, w);
    la::DenseMatrix rhs = la::DenseMatrix::OuterProduct(
        la::Vector::Basis(g.num_nodes(), update.dst), seed->theta);
    EXPECT_LT(la::MaxAbsDiff(lhs, rhs), 1e-9) << graph::ToString(update);
  }
}

TEST(Theorems23, DeltaSolvesRankOneSylvesterEquation) {
  // ΔS from Inc-uSR must satisfy (to truncation error)
  //   ΔS = C·Q̃·ΔS·Q̃ᵀ + C·(u·wᵀ + w·uᵀ).
  DynamicDiGraph g = RandomGraph(10, 24, 55);
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  EdgeUpdate update{UpdateKind::kInsert, 1, 0};
  if (g.HasEdge(1, 0)) update = {UpdateKind::kDelete, 1, 0};

  auto seed = ComputeUpdateSeed(q, s, update, options);
  ASSERT_TRUE(seed.ok());
  auto delta = IncUsrDelta(q, s, update, options);
  ASSERT_TRUE(delta.ok());

  // Build Q̃ and T densely.
  DynamicDiGraph g_new = g;
  Status applied = update.kind == UpdateKind::kInsert
                       ? g_new.AddEdge(update.src, update.dst)
                       : g_new.RemoveEdge(update.src, update.dst);
  ASSERT_TRUE(applied.ok());
  la::DenseMatrix q_new = graph::BuildTransition(g_new).ToDense();

  la::Vector u = seed->rank_one.u.ToDense();
  la::Vector z = s.Multiply(seed->rank_one.v.ToDense());
  la::Vector w = q.Multiply(z);
  w.Axpy(seed->gamma / 2.0, u);

  la::DenseMatrix rhs = la::Multiply(
      la::Multiply(q_new, delta.value()), q_new.Transpose());
  rhs.Scale(options.damping);
  rhs.AddOuterProduct(options.damping, u, w);
  rhs.AddOuterProduct(options.damping, w, u);
  EXPECT_LT(la::MaxAbsDiff(delta.value(), rhs), 1e-9);
}

TEST(Theorem4, UntouchedPairsAreExactlyUnchanged) {
  // Inc-SR must leave every node-pair outside the affected areas
  // bit-identical (not merely close): compare against a copy.
  DynamicDiGraph g(9);
  // Two weakly-linked communities: updates inside one must not perturb
  // score entries private to the other.
  for (auto [s, d] : std::initializer_list<std::pair<int, int>>{
           {0, 1}, {1, 2}, {2, 0}, {0, 2},           // community A {0,1,2}
           {4, 5}, {5, 6}, {6, 4}, {4, 6}, {6, 5}})  // community B {4,5,6}
  {
    INCSR_CHECK(g.AddEdge(s, d).ok(), "edge");
  }
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DenseMatrix s_before = s;
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  IncSrEngine engine(options);

  // Insert inside community A.
  ASSERT_TRUE(
      engine.ApplyUpdate({UpdateKind::kInsert, 1, 0}, &g, &q, &s).ok());
  // Pairs fully inside community B are untouched, bitwise.
  for (int a : {4, 5, 6}) {
    for (int b : {4, 5, 6}) {
      EXPECT_EQ(s(a, b), s_before(a, b)) << a << "," << b;
    }
  }
  // Isolated nodes (3, 7, 8) are untouched too.
  for (int a : {3, 7, 8}) {
    for (std::size_t b = 0; b < 9; ++b) {
      EXPECT_EQ(s(a, b), s_before(a, b)) << a << "," << b;
    }
  }
  // But something in community A did change.
  EXPECT_GT(la::MaxAbsDiff(s, s_before), 1e-6);
}

TEST(Theorem4, AffectedAreaShrinksWithLocality) {
  // A hub insertion touching many similar nodes affects more pairs than a
  // pendant insertion — sanity for the |AFF| metric itself.
  auto stream = graph::PreferentialCitation(
      {.num_nodes = 60, .mean_out_degree = 3.0, .seed = 10});
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(60, stream.value());
  SimRankOptions options;
  options.iterations = 10;
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  IncSrEngine engine(options);
  la::DenseMatrix s_work = s;
  Rng rng(4);
  auto insertion = graph::SampleInsertions(g, 1, &rng);
  ASSERT_TRUE(insertion.ok());
  ASSERT_TRUE(engine.ApplyUpdate(insertion.value()[0], &g, &q, &s_work).ok());
  const AffectedAreaStats& stats = engine.last_stats();
  EXPECT_GT(stats.PrunedFraction(), 0.0);
  EXPECT_LT(stats.AffectedFraction(), 1.0);
  EXPECT_EQ(stats.a_sizes.size(), 11u);
}

TEST(UpdateSeed, InvalidUpdatesAreRejectedWithContext) {
  DynamicDiGraph g = RandomGraph(8, 16, 21);
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);

  auto edges = g.Edges();
  ASSERT_FALSE(edges.empty());
  EdgeUpdate dup{UpdateKind::kInsert, edges[0].src, edges[0].dst};
  EXPECT_EQ(ComputeUpdateSeed(q, s, dup, options).status().code(),
            StatusCode::kAlreadyExists);

  EdgeUpdate missing{UpdateKind::kDelete, 0, 0};
  if (!g.HasEdge(0, 0)) {
    EXPECT_EQ(ComputeUpdateSeed(q, s, missing, options).status().code(),
              StatusCode::kNotFound);
  }
  EdgeUpdate oob{UpdateKind::kInsert, 0, 100};
  EXPECT_EQ(ComputeUpdateSeed(q, s, oob, options).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SelfLoops, IncrementalHandlesSelfLoopInsertion) {
  DynamicDiGraph g = RandomGraph(8, 18, 31);
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  ASSERT_FALSE(g.HasEdge(3, 3));
  ASSERT_TRUE(
      IncUsrApplyUpdate({UpdateKind::kInsert, 3, 3}, options, &g, &q, &s)
          .ok());
  EXPECT_LT(la::MaxAbsDiff(s, simrank::BatchMatrix(g, options)), 1e-9);
}

}  // namespace
}  // namespace incsr::core
