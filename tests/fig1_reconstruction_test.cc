// Pins the Fig. 1 reconstruction (see bench/fig1_example_table.cc and
// DESIGN.md §4) to the paper's qualitative claims, so the example graph
// cannot silently drift away from the structural facts the text fixes:
// d_j = 2 via in-neighbors {h, k}; i, j, f share in-neighborhoods; the
// insertion's effects reach the {a, b, d} region but leave the satellite
// pairs untouched; Inc-SR stays exact while a lossless-SVD Inc-SVD does
// not. Also covers façade edge cases (empty graph, single node,
// self-loop via the facade).
#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic_simrank.h"
#include "graph/digraph.h"
#include "incsvd/inc_svd.h"
#include "simrank/batch_matrix.h"

namespace incsr {
namespace {

using core::DynamicSimRank;
using graph::DynamicDiGraph;
using simrank::SimRankOptions;

graph::NodeId Id(char name) { return static_cast<graph::NodeId>(name - 'a'); }

DynamicDiGraph Fig1Graph() {
  DynamicDiGraph g(15);
  const std::pair<char, char> edges[] = {
      {'c', 'a'}, {'d', 'a'}, {'e', 'a'}, {'d', 'b'}, {'e', 'b'},
      {'n', 'b'}, {'h', 'f'}, {'k', 'f'}, {'h', 'i'}, {'k', 'i'},
      {'h', 'j'}, {'k', 'j'}, {'o', 'g'}, {'e', 'g'}, {'o', 'k'},
      {'n', 'k'}, {'n', 'h'}, {'o', 'h'}, {'n', 'l'}, {'e', 'l'},
      {'n', 'm'}, {'o', 'm'}, {'j', 'd'},
  };
  for (auto [s, d] : edges) {
    INCSR_CHECK(g.AddEdge(Id(s), Id(d)).ok(), "edge %c->%c", s, d);
  }
  return g;
}

SimRankOptions PaperOptions() {
  SimRankOptions options;
  options.damping = 0.8;  // the figure's setting
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(0.8)) + 2;
  return options;
}

TEST(Fig1Reconstruction, StructuralFactsFromThePaper) {
  DynamicDiGraph g = Fig1Graph();
  // d_j = 2 with in-neighbors {h, k} before the insertion.
  auto in_j = g.InNeighbors(Id('j'));
  ASSERT_EQ(in_j.size(), 2u);
  EXPECT_EQ(in_j[0], Id('h'));
  EXPECT_EQ(in_j[1], Id('k'));
  // i and f share j's in-neighborhood (the S column structure of Fig. 1).
  la::DenseMatrix s = simrank::BatchMatrix(g, PaperOptions());
  EXPECT_GT(s(Id('i'), Id('j')), 0.0);
  EXPECT_GT(s(Id('f'), Id('i')), 0.0);
  EXPECT_GT(s(Id('f'), Id('j')), 0.0);
  // The satellite pairs of the table's gray rows score nonzero too.
  EXPECT_GT(s(Id('k'), Id('g')), 0.0);
  EXPECT_GT(s(Id('k'), Id('h')), 0.0);
  EXPECT_GT(s(Id('m'), Id('l')), 0.0);
  // (a, d) starts at exactly zero — the pair the insertion awakens.
  EXPECT_EQ(s(Id('a'), Id('d')), 0.0);
}

TEST(Fig1Reconstruction, InsertionChangesAndPreservesTheRightPairs) {
  SimRankOptions options = PaperOptions();
  auto index = DynamicSimRank::Create(Fig1Graph(), options);
  ASSERT_TRUE(index.ok());
  la::DenseMatrix before = index->scores().ToDense();
  ASSERT_TRUE(index->InsertEdge(Id('i'), Id('j')).ok());
  const la::ScoreStore& after = index->scores();

  // Unchanged pairs (gray rows): bitwise identical.
  for (auto [x, y] : {std::pair{'i', 'f'}, std::pair{'k', 'g'},
                      std::pair{'k', 'h'}, std::pair{'m', 'l'}}) {
    EXPECT_EQ(after(Id(x), Id(y)), before(Id(x), Id(y))) << x << "," << y;
  }
  // Changed pairs.
  EXPECT_NE(after(Id('a'), Id('b')), before(Id('a'), Id('b')));
  EXPECT_GT(after(Id('a'), Id('d')), 0.0);  // awakened from exact zero
  EXPECT_LT(after(Id('j'), Id('f')), before(Id('j'), Id('f')));

  // Exactness against the batch ground truth.
  la::DenseMatrix truth = simrank::BatchMatrix(index->graph(), options);
  EXPECT_LT(la::MaxAbsDiff(after, truth), 1e-9);
}

TEST(Fig1Reconstruction, LosslessIncSvdStillDeviates) {
  SimRankOptions options = PaperOptions();
  incsvd::IncSvdOptions svd_options;
  svd_options.simrank = options;
  svd_options.factorization = incsvd::Factorization::kDenseJacobi;
  auto baseline = incsvd::IncSvd::Create(Fig1Graph(), svd_options);
  ASSERT_TRUE(baseline.ok());
  ASSERT_LT(baseline->factors().rank(), 15u);  // rank(Q) < n — Section IV
  ASSERT_TRUE(baseline
                  ->ApplyBatch({{graph::UpdateKind::kInsert, Id('i'), Id('j')}})
                  .ok());
  auto scores = baseline->ComputeScores();
  ASSERT_TRUE(scores.ok());
  DynamicDiGraph g_new = Fig1Graph();
  ASSERT_TRUE(g_new.AddEdge(Id('i'), Id('j')).ok());
  la::DenseMatrix truth = simrank::BatchMatrix(g_new, options);
  EXPECT_GT(la::MaxAbsDiff(scores.value(), truth), 1e-3);
}

TEST(FacadeEdgeCases, EmptyAndTinyGraphs) {
  auto empty = DynamicSimRank::Create(DynamicDiGraph(0), SimRankOptions{});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->TopKPairs(5).empty());

  auto single = DynamicSimRank::Create(DynamicDiGraph(1), SimRankOptions{});
  ASSERT_TRUE(single.ok());
  EXPECT_DOUBLE_EQ(single->Score(0, 0), 1.0 - single->options().damping);
  EXPECT_TRUE(single->TopKFor(0, 3).empty());
  // The only possible edge on one node is a self-loop.
  ASSERT_TRUE(single->InsertEdge(0, 0).ok());
  la::DenseMatrix truth = simrank::BatchMatrix(single->graph(),
                                               SimRankOptions{});
  EXPECT_LT(la::MaxAbsDiff(single->scores(), truth), 2e-4);  // K=15 tail
}

TEST(FacadeEdgeCases, SelfLoopThroughFacadeStaysExact) {
  DynamicDiGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  SimRankOptions options;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(options.damping)) + 2;
  auto index = DynamicSimRank::Create(g, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->InsertEdge(2, 2).ok());
  ASSERT_TRUE(index->DeleteEdge(0, 1).ok());
  la::DenseMatrix truth = simrank::BatchMatrix(index->graph(), options);
  EXPECT_LT(la::MaxAbsDiff(index->scores(), truth), 1e-9);
}

}  // namespace
}  // namespace incsr
