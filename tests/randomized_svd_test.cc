// Tests for the randomized truncated SVD and its Gram-Schmidt range
// finder — the substrate that makes the Inc-SVD baseline's r = 5
// factorization tractable at bench scale.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "la/qr.h"
#include "la/randomized_svd.h"
#include "la/svd.h"

namespace incsr::la {
namespace {

DenseMatrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

double OrthonormalityDefect(const DenseMatrix& x) {
  DenseMatrix gram = MultiplyTransposeA(x, x);
  gram.AddScaledIdentity(-1.0);
  return gram.MaxAbs();
}

TEST(OrthonormalBasisTest, FullRankInput) {
  Rng rng(3);
  DenseMatrix a = RandomMatrix(12, 5, &rng);
  auto q = OrthonormalBasis(a);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->cols(), 5u);
  EXPECT_LT(OrthonormalityDefect(q.value()), 1e-12);
  // Column span is preserved: projecting A onto Q recovers A.
  DenseMatrix projected = Multiply(q.value(), MultiplyTransposeA(q.value(), a));
  EXPECT_LT(MaxAbsDiff(projected, a), 1e-10);
}

TEST(OrthonormalBasisTest, RankDeficientInputDropsColumns) {
  Rng rng(5);
  DenseMatrix left = RandomMatrix(10, 3, &rng);
  DenseMatrix right = RandomMatrix(3, 6, &rng);
  DenseMatrix a = Multiply(left, right);  // rank 3, 6 columns
  auto q = OrthonormalBasis(a);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->cols(), 3u);
  EXPECT_LT(OrthonormalityDefect(q.value()), 1e-10);
}

TEST(OrthonormalBasisTest, DegenerateInputsAreRejected) {
  EXPECT_FALSE(OrthonormalBasis(DenseMatrix()).ok());
  EXPECT_EQ(OrthonormalBasis(DenseMatrix(4, 3)).status().code(),
            StatusCode::kFailedPrecondition);  // zero matrix
}

TEST(RandomizedSvdTest, TopSingularTripletsMatchJacobi) {
  auto stream = graph::PreferentialCitation(
      {.num_nodes = 150, .mean_out_degree = 5.0, .seed = 9});
  ASSERT_TRUE(stream.ok());
  auto g = graph::MaterializeGraph(150, stream.value());
  CsrMatrix q_sparse = graph::BuildTransitionCsr(g);

  auto randomized = ComputeRandomizedSvd(q_sparse, {.rank = 8});
  ASSERT_TRUE(randomized.ok());
  ASSERT_EQ(randomized->rank(), 8u);

  auto exact = ComputeSvd(q_sparse.ToDense());
  ASSERT_TRUE(exact.ok());
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(randomized->sigma[k], exact->sigma[k],
                0.03 * exact->sigma[0])
        << "sigma[" << k << "]";
  }
  // Factors are orthonormal and the truncation error is near-optimal:
  // within a modest factor of the Eckart-Young bound sigma_{r+1}.
  EXPECT_LT(OrthonormalityDefect(randomized->u), 1e-9);
  EXPECT_LT(OrthonormalityDefect(randomized->v), 1e-9);
  DenseMatrix err = randomized->Reconstruct();
  err.AddScaled(-1.0, q_sparse.ToDense());
  double dropped_sq = 0.0;
  for (std::size_t k = 8; k < exact->rank(); ++k) {
    dropped_sq += exact->sigma[k] * exact->sigma[k];
  }
  EXPECT_LT(err.FrobeniusNorm(), 2.0 * std::sqrt(dropped_sq) + 1e-9);
}

TEST(RandomizedSvdTest, ExactOnLowRankMatrix) {
  // When the true rank is below the sketch size, the result is exact.
  Rng rng(13);
  DenseMatrix left = RandomMatrix(40, 4, &rng);
  DenseMatrix right = RandomMatrix(4, 40, &rng);
  DenseMatrix dense = Multiply(left, right);
  std::vector<std::tuple<std::int32_t, std::int32_t, double>> triplets;
  for (std::int32_t i = 0; i < 40; ++i) {
    for (std::int32_t j = 0; j < 40; ++j) {
      triplets.emplace_back(i, j, dense(static_cast<std::size_t>(i),
                                        static_cast<std::size_t>(j)));
    }
  }
  CsrMatrix sparse = CsrMatrix::FromTriplets(40, 40, triplets);
  auto svd = ComputeRandomizedSvd(sparse, {.rank = 4});
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd->rank(), 4u);
  EXPECT_LT(MaxAbsDiff(svd->Reconstruct(), dense),
            1e-9 * (1.0 + dense.MaxAbs()));
}

TEST(RandomizedSvdTest, DeterministicInSeed) {
  auto stream = graph::ErdosRenyiGnm(60, 240, 21);
  ASSERT_TRUE(stream.ok());
  auto g = graph::MaterializeGraph(60, stream.value());
  CsrMatrix q = graph::BuildTransitionCsr(g);
  auto a = ComputeRandomizedSvd(q, {.rank = 5, .seed = 42});
  auto b = ComputeRandomizedSvd(q, {.rank = 5, .seed = 42});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(MaxAbsDiff(a->u, b->u), 0.0);
  EXPECT_EQ(la::MaxAbsDiff(a->sigma, b->sigma), 0.0);
}

TEST(RandomizedSvdTest, Validation) {
  CsrMatrix empty;
  EXPECT_FALSE(ComputeRandomizedSvd(empty, {.rank = 3}).ok());
  auto stream = graph::ErdosRenyiGnm(10, 30, 1);
  ASSERT_TRUE(stream.ok());
  CsrMatrix q = graph::BuildTransitionCsr(
      graph::MaterializeGraph(10, stream.value()));
  EXPECT_EQ(ComputeRandomizedSvd(q, {.rank = 0}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace incsr::la
