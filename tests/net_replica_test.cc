// Replica-consistency tests for the replication tier (src/net/
// replication.*): a primary server fans its applied update stream out to
// subscribed replicas, which replay the SAME validated batches with the
// SAME batch boundaries through the same deterministic kernels — so a
// replica at epoch E must serve scores BITWISE identical to the primary
// at epoch E, not merely close. The suite pins that property under a
// mixed insert/delete stream, through a forced primary-server restart
// (disconnect → backoff → resubscribe → backlog catch-up), and checks the
// failure edges: writes to a replica answer kNotSupported, and a backlog
// trimmed past a subscriber's sequence latches the permanent
// catch-up-failed flag instead of serving a silently diverged replica.
// TSan-clean; CI runs it under -fsanitize=thread.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/dynamic_simrank.h"
#include "graph/generators.h"
#include "graph/update_stream.h"
#include "net/client.h"
#include "net/replication.h"
#include "net/server.h"
#include "service/simrank_service.h"

namespace incsr::net {
namespace {

using core::DynamicSimRank;
using graph::DynamicDiGraph;
using graph::EdgeUpdate;

simrank::SimRankOptions Converged() {
  simrank::SimRankOptions options;
  options.iterations = 30;
  return options;
}

DynamicDiGraph TestGraph(std::uint64_t seed = 3, std::size_t n = 16,
                         std::size_t m = 40) {
  auto stream = graph::ErdosRenyiGnm(n, m, seed);
  INCSR_CHECK(stream.ok(), "generator");
  return graph::MaterializeGraph(n, stream.value());
}

std::unique_ptr<service::SimRankService> MakePrimary(
    const DynamicDiGraph& graph, service::ServiceOptions options = {}) {
  auto index = DynamicSimRank::Create(graph, Converged());
  INCSR_CHECK(index.ok(), "index build");
  auto service =
      service::SimRankService::Create(std::move(index).value(), options);
  INCSR_CHECK(service.ok(), "service build");
  return std::move(service).value();
}

std::unique_ptr<service::SimRankService> MakeReplica(
    const DynamicDiGraph& graph, service::ServiceOptions options = {}) {
  auto index = DynamicSimRank::Create(graph, Converged());
  INCSR_CHECK(index.ok(), "replica index build");
  auto service = service::SimRankService::CreateReplica(
      std::move(index).value(), options);
  INCSR_CHECK(service.ok(), "replica build");
  return std::move(service).value();
}

std::unique_ptr<ReplicationClient> MustSubscribe(
    service::SimRankService* replica, std::uint16_t primary_port) {
  ReplicationClientOptions options;
  options.primary_port = primary_port;
  auto client = ReplicationClient::Start(replica, options);
  INCSR_CHECK(client.ok(), "subscribe: %s",
              client.status().ToString().c_str());
  return std::move(client).value();
}

// Mixed insert/delete stream over the test graph, valid in submit order.
std::vector<EdgeUpdate> MixedStream(const DynamicDiGraph& graph,
                                    std::size_t inserts, std::size_t deletes,
                                    std::uint64_t seed) {
  Rng rng(seed);
  auto ins = graph::SampleInsertions(graph, inserts, &rng);
  INCSR_CHECK(ins.ok(), "insert sampling");
  auto del = graph::SampleDeletions(graph, deletes, &rng);
  INCSR_CHECK(del.ok(), "delete sampling");
  std::vector<EdgeUpdate> updates;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < ins->size() || b < del->size()) {  // 2:1 interleave
    for (int i = 0; i < 2 && a < ins->size(); ++i) {
      updates.push_back((*ins)[a++]);
    }
    if (b < del->size()) updates.push_back((*del)[b++]);
  }
  return updates;
}

void AwaitEpoch(const service::SimRankService& replica,
                std::uint64_t target) {
  WallTimer timer;
  while (replica.stats().epoch < target) {
    INCSR_CHECK(timer.ElapsedSeconds() < 20.0,
                "replica stuck at epoch %llu of %llu",
                static_cast<unsigned long long>(replica.stats().epoch),
                static_cast<unsigned long long>(target));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// Every pair's score and every node's top-k, over the wire, must be
// BITWISE equal between the two servers.
void ExpectServersBitwiseIdentical(const IncSrServer& primary,
                                   const IncSrServer& replica,
                                   graph::NodeId num_nodes) {
  auto primary_client = IncSrClient::Connect(primary.host(), primary.port());
  auto replica_client = IncSrClient::Connect(replica.host(), replica.port());
  ASSERT_TRUE(primary_client.ok());
  ASSERT_TRUE(replica_client.ok());
  for (graph::NodeId a = 0; a < num_nodes; ++a) {
    for (graph::NodeId b = 0; b < num_nodes; ++b) {
      auto from_primary = primary_client->Score(a, b);
      auto from_replica = replica_client->Score(a, b);
      ASSERT_TRUE(from_primary.ok());
      ASSERT_TRUE(from_replica.ok());
      ASSERT_EQ(std::bit_cast<std::uint64_t>(*from_primary),
                std::bit_cast<std::uint64_t>(*from_replica))
          << "pair (" << a << ", " << b << ") diverged";
    }
    auto primary_topk = primary_client->TopKFor(a, 6);
    auto replica_topk = replica_client->TopKFor(a, 6);
    ASSERT_TRUE(primary_topk.ok());
    ASSERT_TRUE(replica_topk.ok());
    EXPECT_EQ(*primary_topk, *replica_topk) << "TopKFor(" << a << ")";
  }
}

// The acceptance test: primary + 2 replicas under a mixed insert/delete
// stream submitted over the wire in several batches; after convergence
// every replica serves bitwise what the primary serves at the same epoch.
TEST(Replication, TwoReplicasServeBitwiseIdenticalAnswers) {
  DynamicDiGraph graph = TestGraph(29, 16, 40);
  auto primary = MakePrimary(graph);
  auto primary_server = IncSrServer::Serve(primary.get());
  ASSERT_TRUE(primary_server.ok());

  auto replica_a = MakeReplica(graph);
  auto replica_b = MakeReplica(graph);
  auto server_a = IncSrServer::Serve(replica_a.get());
  auto server_b = IncSrServer::Serve(replica_b.get());
  ASSERT_TRUE(server_a.ok());
  ASSERT_TRUE(server_b.ok());
  auto stream_a = MustSubscribe(replica_a.get(), (*primary_server)->port());
  auto stream_b = MustSubscribe(replica_b.get(), (*primary_server)->port());

  auto client =
      IncSrClient::Connect("127.0.0.1", (*primary_server)->port());
  ASSERT_TRUE(client.ok());
  const std::vector<EdgeUpdate> updates = MixedStream(graph, 10, 5, 41);
  for (std::size_t at = 0; at < updates.size(); at += 4) {
    std::vector<EdgeUpdate> batch(
        updates.begin() + static_cast<std::ptrdiff_t>(at),
        updates.begin() +
            static_cast<std::ptrdiff_t>(std::min(updates.size(), at + 4)));
    auto submitted = client->Submit(batch);
    ASSERT_TRUE(submitted.ok());
    EXPECT_EQ(submitted->status, wire::RpcStatus::kOk);
  }
  ASSERT_TRUE(client->Flush().ok());

  const std::uint64_t epoch = primary->stats().epoch;
  EXPECT_GE(epoch, 1u);
  AwaitEpoch(*replica_a, epoch);
  AwaitEpoch(*replica_b, epoch);
  EXPECT_EQ(replica_a->stats().applied, primary->stats().applied);
  EXPECT_EQ(replica_b->stats().applied, primary->stats().applied);

  const auto n = static_cast<graph::NodeId>(graph.num_nodes());
  ExpectServersBitwiseIdentical(**primary_server, **server_a, n);
  ExpectServersBitwiseIdentical(**primary_server, **server_b, n);

  // The replica's Stats RPC identifies it as one.
  auto replica_client =
      IncSrClient::Connect("127.0.0.1", (*server_a)->port());
  ASSERT_TRUE(replica_client.ok());
  auto stats = replica_client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->is_replica);
  EXPECT_EQ(stats->stats.epoch, epoch);

  EXPECT_GE((*primary_server)->stats().batches_streamed, 2u);
  stream_a->Stop();
  stream_b->Stop();
}

// Writes must not sneak in through a replica: Submit answers
// kNotSupported on the wire, and subscribing to a replica is refused.
TEST(Replication, ReplicaRefusesWritesAndSubscriptions) {
  DynamicDiGraph graph = TestGraph(31);
  auto primary = MakePrimary(graph);
  auto primary_server = IncSrServer::Serve(primary.get());
  ASSERT_TRUE(primary_server.ok());
  auto replica = MakeReplica(graph);
  auto replica_server = IncSrServer::Serve(replica.get());
  ASSERT_TRUE(replica_server.ok());

  auto client =
      IncSrClient::Connect("127.0.0.1", (*replica_server)->port());
  ASSERT_TRUE(client.ok());
  auto submit = client->Submit(MixedStream(graph, 2, 0, 5));
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit->status, wire::RpcStatus::kNotSupported);
  EXPECT_EQ(submit->accepted, 0u);

  // A replica server exposes no replication surface: a second-tier
  // replica trying to chain off it must be told kNotSupported.
  auto chained = MakeReplica(graph);
  ReplicationClientOptions options;
  options.primary_port = (*replica_server)->port();
  options.reconnect_initial_ms = 10;
  auto chain = ReplicationClient::Start(chained.get(), options);
  ASSERT_TRUE(chain.ok());
  // The replica answers kNotSupported, so the subscriber never completes
  // a subscription (it just keeps backing off). Give it a few retry
  // rounds' worth of wall clock, then check nothing advanced.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(chained->stats().epoch, 0u);
  EXPECT_EQ((*chain)->subscriptions(), 0u);
  (*chain)->Stop();
}

// Forced TCP disconnect mid-stream: the primary's server is stopped
// (every connection drops, including the replication stream) and a new
// server comes up on the SAME port. The subscriber must notice, back
// off, reconnect, resubscribe from its last applied sequence, and then
// follow the live stream of updates applied AFTER the restart — landing
// bitwise identical again.
TEST(Replication, ReconnectResumesStreamThroughPrimaryServerRestart) {
  DynamicDiGraph graph = TestGraph(37, 16, 40);
  auto primary = MakePrimary(graph);
  auto first_server = IncSrServer::Serve(primary.get());
  ASSERT_TRUE(first_server.ok());
  const std::uint16_t port = (*first_server)->port();

  auto replica = MakeReplica(graph);
  auto replica_server = IncSrServer::Serve(replica.get());
  ASSERT_TRUE(replica_server.ok());
  ReplicationClientOptions sub_options;
  sub_options.primary_port = port;
  sub_options.reconnect_initial_ms = 10;  // fast retry keeps the test quick
  auto subscriber = ReplicationClient::Start(replica.get(), sub_options);
  ASSERT_TRUE(subscriber.ok());

  // Phase 1: converge over the live stream.
  ASSERT_TRUE(primary->SubmitBatch(MixedStream(graph, 6, 3, 43)).ok());
  ASSERT_TRUE(primary->Flush().ok());
  AwaitEpoch(*replica, primary->stats().epoch);

  // Phase 2: kill the server (NOT the service) — the stream drops — and
  // bring up a fresh one on the same port. Its replication log starts at
  // the service's CURRENT epoch, which the replica has already reached,
  // so resubscribing from there is valid.
  (*first_server)->Stop();
  service::SimRankService* raw_primary = primary.get();
  ServerOptions same_port;
  same_port.port = port;
  auto second_server = IncSrServer::Serve(raw_primary, same_port);
  ASSERT_TRUE(second_server.ok()) << second_server.status().ToString();

  // Phase 3: updates applied after the restart reach the replica over
  // the re-established stream.
  ASSERT_TRUE(primary->SubmitBatch(MixedStream(graph, 8, 4, 47)).ok());
  ASSERT_TRUE(primary->Flush().ok());
  AwaitEpoch(*replica, primary->stats().epoch);
  EXPECT_GE((*subscriber)->subscriptions(), 2u);  // it reconnected
  EXPECT_FALSE((*subscriber)->catch_up_failed());
  const auto n = static_cast<graph::NodeId>(graph.num_nodes());
  ExpectServersBitwiseIdentical(**second_server, **replica_server, n);
  (*subscriber)->Stop();
}

// Forced subscriber drop with the server LIVE: updates applied while the
// replica is dark are retained in the server's replication log, so a new
// subscription from the replica's last applied sequence catches up from
// the backlog alone — no live batch needs to arrive.
TEST(Replication, DroppedSubscriberCatchesUpFromBacklog) {
  DynamicDiGraph graph = TestGraph(43, 16, 40);
  auto primary = MakePrimary(graph);
  auto primary_server = IncSrServer::Serve(primary.get());
  ASSERT_TRUE(primary_server.ok());
  auto replica = MakeReplica(graph);
  auto replica_server = IncSrServer::Serve(replica.get());
  ASSERT_TRUE(replica_server.ok());

  auto first = MustSubscribe(replica.get(), (*primary_server)->port());
  ASSERT_TRUE(primary->SubmitBatch(MixedStream(graph, 6, 3, 59)).ok());
  ASSERT_TRUE(primary->Flush().ok());
  AwaitEpoch(*replica, primary->stats().epoch);
  first->Stop();  // replica goes dark

  ASSERT_TRUE(primary->SubmitBatch(MixedStream(graph, 8, 4, 61)).ok());
  ASSERT_TRUE(primary->Flush().ok());
  const std::uint64_t target = primary->stats().epoch;
  EXPECT_LT(replica->stats().epoch, target);

  // Resubscribe: from_seq = the replica's epoch; everything newer is
  // still retained (default backlog ≫ the handful of batches here).
  auto second = MustSubscribe(replica.get(), (*primary_server)->port());
  AwaitEpoch(*replica, target);
  EXPECT_FALSE(second->catch_up_failed());
  const auto n = static_cast<graph::NodeId>(graph.num_nodes());
  ExpectServersBitwiseIdentical(**primary_server, **replica_server, n);
  second->Stop();
}

// A server attached to a service that already has history starts its log
// at the attach-time epoch: a replica behind that floor must be told
// kInvalid (catch-up impossible) — NOT be accepted and then fed a stream
// with a hole in it.
TEST(Replication, FreshServerRefusesSubscribersBehindItsAttachEpoch) {
  DynamicDiGraph graph = TestGraph(47, 12, 30);
  auto primary = MakePrimary(graph);
  // History applied while NO server is attached.
  ASSERT_TRUE(primary->SubmitBatch(MixedStream(graph, 6, 3, 67)).ok());
  ASSERT_TRUE(primary->Flush().ok());
  ASSERT_GE(primary->stats().epoch, 1u);

  auto late_server = IncSrServer::Serve(primary.get());
  ASSERT_TRUE(late_server.ok());
  auto replica = MakeReplica(graph);  // starts at epoch 0, behind the floor
  ReplicationClientOptions options;
  options.primary_port = (*late_server)->port();
  options.reconnect_initial_ms = 10;
  auto subscriber = ReplicationClient::Start(replica.get(), options);
  ASSERT_TRUE(subscriber.ok());

  WallTimer timer;
  while (!(*subscriber)->catch_up_failed()) {
    INCSR_CHECK(timer.ElapsedSeconds() < 10.0, "catch-up failure not latched");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(replica->stats().epoch, 0u);  // nothing partial was applied
  (*subscriber)->Stop();
}

// A replica whose sequence aged out of the primary's bounded backlog must
// latch catch_up_failed instead of silently serving stale state.
TEST(Replication, TrimmedBacklogLatchesCatchUpFailed) {
  DynamicDiGraph graph = TestGraph(41, 12, 30);
  service::ServiceOptions tiny_batches;
  tiny_batches.max_batch = 1;  // one epoch per update → many log entries
  auto primary = MakePrimary(graph, tiny_batches);
  ServerOptions small_log;
  small_log.replication_backlog = 2;  // keep only the last two batches
  auto primary_server = IncSrServer::Serve(primary.get(), small_log);
  ASSERT_TRUE(primary_server.ok());

  // Advance the primary well past what a from-scratch replica can reach.
  ASSERT_TRUE(primary->SubmitBatch(MixedStream(graph, 8, 4, 53)).ok());
  ASSERT_TRUE(primary->Flush().ok());
  ASSERT_GT(primary->stats().epoch, 2u);

  auto replica = MakeReplica(graph);
  ReplicationClientOptions options;
  options.primary_port = (*primary_server)->port();
  options.reconnect_initial_ms = 10;
  auto subscriber = ReplicationClient::Start(replica.get(), options);
  ASSERT_TRUE(subscriber.ok());

  WallTimer timer;
  while (!(*subscriber)->catch_up_failed()) {
    INCSR_CHECK(timer.ElapsedSeconds() < 10.0, "catch-up failure not latched");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE((*subscriber)->catch_up_failed());
  EXPECT_EQ(replica->stats().epoch, 0u);  // never applied a thing
  (*subscriber)->Stop();
}

}  // namespace
}  // namespace incsr::net
