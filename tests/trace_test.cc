// Tests for the obs/ serve-path tracing subsystem:
//   - TraceRing SPSC mechanics: push order preserved, overflow DROPS and
//     counts instead of blocking or resizing, drained slots are reusable.
//   - Tracer end-to-end: concurrent producers + the drainer thread write
//     a file that ReadTraceFile decodes back to exactly the accepted
//     events, with footer drop accounting. The suite is TSan-clean; CI
//     runs it under -fsanitize=thread.
//   - Binary round-trip: every EventKind and every field survives the
//     file format bit-exactly; truncated files keep the complete prefix
//     (footer reported missing), corrupted headers fail cleanly.
//   - Disabled-macro zero cost: TRACE_* macros record nothing anywhere
//     while no session is active (verified via session counter deltas).
//   - Histogram: count == Σ buckets, merge is associative + commutative,
//     percentiles track the log-bucket error envelope.
//   - Summarize: phase rollups, applier pipeline coverage, and the epoch
//     timeline computed from a hand-built TraceFile.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"

namespace incsr::obs {
namespace {

std::string TempTracePath(const char* tag) {
  return testing::TempDir() + "/incsr_trace_test_" + tag + "_%p.trace";
}

TraceEvent MakeEvent(EventId id, EventKind kind, std::uint32_t arg,
                     std::uint64_t ts_ns, std::uint64_t value) {
  TraceEvent event;
  event.id = static_cast<std::uint16_t>(id);
  event.kind = static_cast<std::uint8_t>(kind);
  event.arg = arg;
  event.ts_ns = ts_ns;
  event.value = value;
  return event;
}

// ---- TraceRing -------------------------------------------------------------

TEST(TraceRing, PreservesPushOrder) {
  TraceRing ring(/*capacity=*/64, /*thread_id=*/7);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.TryPush(
        MakeEvent(EventId::kKernelApply, EventKind::kSpan, 0, i, i * 2)));
  }
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(&out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].ts_ns, i);
    EXPECT_EQ(out[i].value, i * 2);
  }
  EXPECT_EQ(ring.written(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, OverflowDropsAndCountsInsteadOfBlocking) {
  TraceRing ring(/*capacity=*/8, /*thread_id=*/1);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPush(
        MakeEvent(EventId::kRerank, EventKind::kSpan, 0, i, 1)));
  }
  // Full: pushes return immediately with false, each counted once.
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(ring.TryPush(
        MakeEvent(EventId::kRerank, EventKind::kSpan, 0, 100 + i, 1)));
  }
  EXPECT_EQ(ring.written(), 8u);
  EXPECT_EQ(ring.dropped(), 5u);
  // Draining frees the slots; the dropped events are gone for good (the
  // ring never buffers what it rejected), new pushes land.
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.Drain(&out), 8u);
  EXPECT_TRUE(ring.TryPush(
      MakeEvent(EventId::kRerank, EventKind::kSpan, 0, 200, 1)));
  out.clear();
  ASSERT_EQ(ring.Drain(&out), 1u);
  EXPECT_EQ(out[0].ts_ns, 200u);
  EXPECT_EQ(ring.dropped(), 5u);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(/*capacity=*/9, /*thread_id=*/0);
  EXPECT_EQ(ring.capacity(), 16u);
  TraceRing tiny(/*capacity=*/1, /*thread_id=*/0);
  EXPECT_EQ(tiny.capacity(), 8u);  // clamped minimum
}

// SPSC under real concurrency: one pusher, one drainer, no lost or
// duplicated ACCEPTED events, dropped only ever counted. TSan-clean.
TEST(TraceRing, ConcurrentProducerAndDrainer) {
  TraceRing ring(/*capacity=*/64, /*thread_id=*/3);
  constexpr std::uint64_t kEvents = 20000;
  std::vector<TraceEvent> drained;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      ring.Drain(&drained);
    }
    ring.Drain(&drained);  // final sweep after the producer finished
  });
  std::uint64_t pushed = 0;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    if (ring.TryPush(MakeEvent(EventId::kSchedSteal, EventKind::kCounter,
                               0, i, i))) {
      ++pushed;
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(pushed + ring.dropped(), kEvents);
  EXPECT_EQ(ring.written(), pushed);
  ASSERT_EQ(drained.size(), pushed);
  // Accepted events arrive in push order with none duplicated: ts_ns is
  // strictly increasing across the drained sequence.
  for (std::size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LT(drained[i - 1].ts_ns, drained[i].ts_ns);
  }
}

// ---- Tracer + file round-trip ----------------------------------------------

TEST(Tracer, RoundTripsEveryEventKindThroughTheFile) {
  Tracer& tracer = Tracer::Instance();
  const std::string path = TempTracePath("kinds");
  ASSERT_TRUE(tracer.Start(path, /*buffer_kb=*/64).ok());
  const std::string resolved = tracer.active_path();

  // One event per kind with every field loaded with distinct values —
  // TraceEmit stamps ts_ns itself, so spans with a controlled payload go
  // through Emit directly.
  tracer.Emit(MakeEvent(EventId::kBatchApply, EventKind::kSpan, 0xA1B2C3D4,
                        0x1122334455667788ull, 0x99AABBCCDDEEFF00ull));
  TraceEmit(EventId::kQueueWait, EventKind::kCounter, 17, 123456789ull);
  TraceEmit(EventId::kEpochPublished, EventKind::kInstant, 42, 64ull);
  { TRACE_SCOPE_ARG(kRerank, 9); }
  TRACE_COUNTER(kSchedSteal, 3);

  tracer.Stop();
  EXPECT_EQ(tracer.active_path(), "");

  auto file = ReadTraceFile(resolved);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->version, kTraceVersion);
  EXPECT_TRUE(file->footer_present);
  EXPECT_EQ(file->total_events(), 5u);
  EXPECT_EQ(file->total_dropped(), 0u);
  EXPECT_LE(file->start_ns, file->stop_ns);
  ASSERT_EQ(file->threads.size(), 1u);  // all five came from this thread

  const std::vector<TraceEvent>& events = file->threads.begin()->second;
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].id, static_cast<std::uint16_t>(EventId::kBatchApply));
  EXPECT_EQ(events[0].kind, static_cast<std::uint8_t>(EventKind::kSpan));
  EXPECT_EQ(events[0].arg, 0xA1B2C3D4u);
  EXPECT_EQ(events[0].ts_ns, 0x1122334455667788ull);
  EXPECT_EQ(events[0].value, 0x99AABBCCDDEEFF00ull);
  EXPECT_EQ(events[1].id, static_cast<std::uint16_t>(EventId::kQueueWait));
  EXPECT_EQ(events[1].kind, static_cast<std::uint8_t>(EventKind::kCounter));
  EXPECT_EQ(events[1].arg, 17u);
  EXPECT_EQ(events[1].value, 123456789ull);
  EXPECT_EQ(events[2].id,
            static_cast<std::uint16_t>(EventId::kEpochPublished));
  EXPECT_EQ(events[2].kind, static_cast<std::uint8_t>(EventKind::kInstant));
  EXPECT_EQ(events[2].arg, 42u);
  EXPECT_EQ(events[2].value, 64u);
  EXPECT_EQ(events[3].id, static_cast<std::uint16_t>(EventId::kRerank));
  EXPECT_EQ(events[3].kind, static_cast<std::uint8_t>(EventKind::kSpan));
  EXPECT_EQ(events[3].arg, 9u);
  EXPECT_EQ(events[4].id, static_cast<std::uint16_t>(EventId::kSchedSteal));
  EXPECT_EQ(events[4].value, 3u);

  std::remove(resolved.c_str());
}

// Many producer threads + the drainer, small rings so overflow actually
// happens: every ACCEPTED event reaches the file, drops are counted in
// the footer, and nothing ever blocks a producer. TSan-clean.
TEST(Tracer, ConcurrentProducersDrainToFileWithDropAccounting) {
  Tracer& tracer = Tracer::Instance();
  const std::string path = TempTracePath("concurrent");
  // 1 KB ring = ~42 events: guarantees overflow under the burst below.
  ASSERT_TRUE(tracer.Start(path, /*buffer_kb=*/1).ok());
  const std::string resolved = tracer.active_path();

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        TraceEmit(EventId::kKernelExpand, EventKind::kCounter,
                  static_cast<std::uint32_t>(t), i);
        if ((i & 1023) == 0) {
          TRACE_SCOPE(kKernelScatter);  // span path under contention too
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  const std::uint64_t recorded = tracer.TotalEventsRecorded();
  const std::uint64_t dropped = tracer.TotalEventsDropped();
  EXPECT_GE(tracer.ring_count(), static_cast<std::size_t>(kThreads));
  // Producers never block: every emission was either accepted or counted.
  // Per thread: kPerThread counters + one span per 1024 (i = 0 included).
  constexpr std::uint64_t kTotal =
      kThreads * (kPerThread + (kPerThread + 1023) / 1024);
  EXPECT_EQ(recorded + dropped, kTotal);
  EXPECT_GT(dropped, 0u) << "rings were sized to overflow";
  tracer.Stop();

  auto file = ReadTraceFile(resolved);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_TRUE(file->footer_present);
  EXPECT_EQ(file->total_events(), recorded);
  EXPECT_EQ(file->total_dropped(), dropped);
  // Per-thread streams kept their push order.
  for (const auto& [thread_id, events] : file->threads) {
    std::uint64_t last_counter = 0;
    bool first = true;
    for (const TraceEvent& event : events) {
      if (event.id != static_cast<std::uint16_t>(EventId::kKernelExpand)) {
        continue;
      }
      if (!first) EXPECT_GT(event.value, last_counter);
      last_counter = event.value;
      first = false;
    }
  }
  std::remove(resolved.c_str());
}

TEST(Tracer, StartRejectsASecondSessionAndStopIsIdempotent) {
  Tracer& tracer = Tracer::Instance();
  const std::string path = TempTracePath("lifecycle");
  ASSERT_TRUE(tracer.Start(path, 64).ok());
  const std::string resolved = tracer.active_path();
  EXPECT_FALSE(tracer.Start(path, 64).ok());
  tracer.Stop();
  tracer.Stop();  // idempotent
  EXPECT_FALSE(Tracer::Enabled());
  std::remove(resolved.c_str());
}

// The disabled macros must leave no trace anywhere — not an event, not a
// registered ring. Measured as deltas on the NEXT session's counters.
TEST(Tracer, DisabledMacrosRecordNothing) {
  Tracer& tracer = Tracer::Instance();
  ASSERT_FALSE(Tracer::Enabled());
  for (int i = 0; i < 1000; ++i) {
    TRACE_SCOPE(kKernelApply);
    TRACE_SCOPE_ARG(kRerank, i);
    TRACE_COUNTER(kSchedSteal, i);
    TRACE_INSTANT(kEpochPublished, i, i);
  }
  const std::string path = TempTracePath("disabled");
  ASSERT_TRUE(tracer.Start(path, 64).ok());
  const std::string resolved = tracer.active_path();
  // Nothing from the disabled loop leaked into the fresh session.
  EXPECT_EQ(tracer.TotalEventsRecorded(), 0u);
  EXPECT_EQ(tracer.TotalEventsDropped(), 0u);
  EXPECT_EQ(tracer.ring_count(), 0u);
  TRACE_COUNTER(kSchedSteal, 1);
  EXPECT_EQ(tracer.TotalEventsRecorded(), 1u);  // exactly the enabled one
  tracer.Stop();
  std::remove(resolved.c_str());
}

// ---- Defensive decoding ----------------------------------------------------

TEST(TraceFileFormat, TruncationKeepsTheCompletePrefix) {
  Tracer& tracer = Tracer::Instance();
  const std::string path = TempTracePath("trunc");
  ASSERT_TRUE(tracer.Start(path, 64).ok());
  const std::string resolved = tracer.active_path();
  for (int i = 0; i < 100; ++i) {
    TraceEmit(EventId::kKernelSeed, EventKind::kCounter, 0,
              static_cast<std::uint64_t>(i));
  }
  tracer.Stop();

  std::string bytes;
  {
    std::ifstream in(resolved, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  auto intact = ReadTraceFile(resolved);
  ASSERT_TRUE(intact.ok());
  ASSERT_TRUE(intact->footer_present);
  const std::uint64_t total = intact->total_events();
  ASSERT_EQ(total, 100u);

  // Drop the tail (footer + part of the last block): the reader keeps
  // every complete block and reports the footer missing — the shape a
  // crashed producer leaves behind.
  const std::string truncated_path = resolved + ".trunc";
  {
    std::ofstream out(truncated_path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() * 2 / 3));
  }
  auto truncated = ReadTraceFile(truncated_path);
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  EXPECT_FALSE(truncated->footer_present);
  EXPECT_LT(truncated->total_events(), total);

  // Corrupted magic fails cleanly.
  const std::string corrupt_path = resolved + ".corrupt";
  {
    std::string corrupt = bytes;
    corrupt[0] = 'X';
    std::ofstream out(corrupt_path, std::ios::binary);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  EXPECT_FALSE(ReadTraceFile(corrupt_path).ok());

  // Unknown future version fails cleanly (offset 8 = LE version field).
  const std::string version_path = resolved + ".version";
  {
    std::string newer = bytes;
    newer[8] = static_cast<char>(kTraceVersion + 1);
    std::ofstream out(version_path, std::ios::binary);
    out.write(newer.data(), static_cast<std::streamsize>(newer.size()));
  }
  EXPECT_FALSE(ReadTraceFile(version_path).ok());

  std::remove(resolved.c_str());
  std::remove(truncated_path.c_str());
  std::remove(corrupt_path.c_str());
  std::remove(version_path.c_str());
}

// ---- Histogram -------------------------------------------------------------

TEST(Histogram, CountIsAlwaysTheBucketSum) {
  Histogram hist;
  const std::uint64_t values[] = {0, 1, 7, 8, 9, 100, 1000, 123456789,
                                  ~std::uint64_t{0}};
  for (std::uint64_t v : values) hist.Record(v);
  HistogramSnapshot snap = hist.snapshot();
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(snap.count, bucket_sum);
  EXPECT_EQ(snap.count, 9u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, ~std::uint64_t{0});
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  Histogram ha;
  Histogram hb;
  Histogram hc;
  for (std::uint64_t v = 1; v < 2000; v += 3) ha.Record(v * 17);
  for (std::uint64_t v = 1; v < 1500; v += 2) hb.Record(v * v);
  for (std::uint64_t v = 0; v < 64; ++v) hc.Record(std::uint64_t{1} << v);
  const HistogramSnapshot a = ha.snapshot();
  const HistogramSnapshot b = hb.snapshot();
  const HistogramSnapshot c = hc.snapshot();

  HistogramSnapshot ab = a;
  ab += b;
  HistogramSnapshot ab_c = ab;
  ab_c += c;
  HistogramSnapshot bc = b;
  bc += c;
  HistogramSnapshot a_bc = a;
  a_bc += bc;
  HistogramSnapshot ba = b;
  ba += a;

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.min, a_bc.min);
  EXPECT_EQ(ab_c.max, a_bc.max);
  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab.buckets, ba.buckets);
  EXPECT_EQ(ab_c.count, a.count + b.count + c.count);
  // Identity: merging an empty snapshot changes nothing.
  HistogramSnapshot with_empty = ab_c;
  with_empty += HistogramSnapshot{};
  EXPECT_EQ(with_empty.buckets, ab_c.buckets);
  EXPECT_EQ(with_empty.min, ab_c.min);
}

TEST(Histogram, PercentilesTrackTheLogBucketErrorEnvelope) {
  Histogram hist;
  for (std::uint64_t v = 1; v <= 100000; ++v) hist.Record(v);
  HistogramSnapshot snap = hist.snapshot();
  // 4 sub-buckets per octave bound relative error by 25%.
  EXPECT_NEAR(snap.Percentile(0.50), 50000.0, 50000.0 * 0.25);
  EXPECT_NEAR(snap.Percentile(0.99), 99000.0, 99000.0 * 0.25);
  EXPECT_EQ(snap.Percentile(0.0), 1.0);    // clamped to min
  EXPECT_EQ(snap.Percentile(1.0), 100000.0);  // clamped to max
  EXPECT_NEAR(snap.Mean(), 50000.5, 1.0);
  EXPECT_EQ(HistogramSnapshot{}.Percentile(0.5), 0.0);
}

TEST(Histogram, ConcurrentRecordersKeepTheInvariant) {
  Histogram hist;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        hist.Record(i * static_cast<std::uint64_t>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPer);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(snap.count, bucket_sum);
}

// ---- Summarize -------------------------------------------------------------

// Hand-built applier timeline: 100 us wall split exactly into the four
// top-level phases, with nested sub-phases that must NOT double-count.
TEST(Summarize, ComputesPhaseRollupsAndApplierCoverage) {
  constexpr std::uint64_t kUs = 1000;
  TraceFile file;
  file.version = kTraceVersion;
  file.footer_present = true;
  std::vector<TraceEvent>& applier = file.threads[7];
  const std::uint64_t t0 = 5'000'000;
  applier.push_back(MakeEvent(EventId::kQueueIdle, EventKind::kSpan, 0,
                              t0, 10 * kUs));
  applier.push_back(MakeEvent(EventId::kBatchApply, EventKind::kSpan, 64,
                              t0 + 10 * kUs, 90 * kUs));
  applier.push_back(MakeEvent(EventId::kCoalesce, EventKind::kSpan, 64,
                              t0 + 10 * kUs, 10 * kUs));
  applier.push_back(MakeEvent(EventId::kKernelApply, EventKind::kSpan, 60,
                              t0 + 20 * kUs, 50 * kUs));
  // Nested inside kernel.apply — excluded from coverage.
  applier.push_back(MakeEvent(EventId::kKernelSeed, EventKind::kSpan, 0,
                              t0 + 21 * kUs, 5 * kUs));
  applier.push_back(MakeEvent(EventId::kPublish, EventKind::kSpan, 0,
                              t0 + 70 * kUs, 30 * kUs));
  applier.push_back(MakeEvent(EventId::kRerank, EventKind::kSpan, 12,
                              t0 + 80 * kUs, 10 * kUs));
  applier.push_back(MakeEvent(EventId::kEpochPublished, EventKind::kInstant,
                              3, t0 + 99 * kUs, 60));
  applier.push_back(MakeEvent(EventId::kQueueWait, EventKind::kCounter, 64,
                              t0 + 15 * kUs, 999));
  // A second, non-applier thread outside the applier extent.
  file.threads[9].push_back(MakeEvent(
      EventId::kSchedRegion, EventKind::kSpan, 8, t0 + 25 * kUs, 4 * kUs));

  TraceSummary summary = Summarize(file);
  EXPECT_EQ(summary.total_events, 10u);
  EXPECT_EQ(summary.first_ts_ns, t0);
  // Wall = first event start .. last span end (publish ends at t0+100us).
  EXPECT_EQ(summary.wall_ns, 100 * kUs);

  const PhaseStat& kernel =
      summary.spans.at(static_cast<std::uint16_t>(EventId::kKernelApply));
  EXPECT_EQ(kernel.count, 1u);
  EXPECT_EQ(kernel.total_ns, 50 * kUs);
  EXPECT_EQ(kernel.arg_sum, 60u);
  const PhaseStat& wait =
      summary.counters.at(static_cast<std::uint16_t>(EventId::kQueueWait));
  EXPECT_EQ(wait.total_ns, 999u);

  // Applier: 10+10+50+30 = 100 us of phases over a 100 us extent.
  EXPECT_EQ(summary.applier_wall_ns, 100 * kUs);
  EXPECT_EQ(summary.applier_phase_ns, 100 * kUs);
  EXPECT_DOUBLE_EQ(summary.applier_coverage, 1.0);

  ASSERT_EQ(summary.epochs.size(), 1u);
  EXPECT_EQ(summary.epochs[0].epoch, 3u);
  EXPECT_EQ(summary.epochs[0].batch_size, 60u);
  EXPECT_EQ(summary.epochs[0].ts_ns, 99 * kUs);

  ASSERT_EQ(summary.threads.size(), 2u);
  EXPECT_TRUE(summary.threads[0].thread_id == 7
                  ? summary.threads[0].is_applier
                  : summary.threads[1].is_applier);

  const std::string report = RenderSummary(summary);
  EXPECT_NE(report.find("kernel.apply"), std::string::npos);
  EXPECT_NE(report.find("queue.wait"), std::string::npos);
  EXPECT_NE(report.find("epoch"), std::string::npos);
  EXPECT_NE(report.find("100.0%"), std::string::npos);  // coverage line
}

TEST(Summarize, EmptyTraceIsWellFormed) {
  TraceFile file;
  file.version = kTraceVersion;
  TraceSummary summary = Summarize(file);
  EXPECT_EQ(summary.total_events, 0u);
  EXPECT_EQ(summary.wall_ns, 0u);
  EXPECT_EQ(summary.applier_coverage, 0.0);
  EXPECT_TRUE(summary.epochs.empty());
  // Rendering an empty summary must not crash or divide by zero.
  EXPECT_FALSE(RenderSummary(summary).empty());
}

TEST(EventNames, CoverEveryKnownId) {
  for (std::uint16_t id = 1; id <= 21; ++id) {
    EXPECT_STRNE(EventName(static_cast<EventId>(id)), "unknown")
        << "missing name for event id " << id;
  }
  EXPECT_STREQ(EventName(static_cast<EventId>(999)), "unknown");
}

}  // namespace
}  // namespace incsr::obs
