// Tests for the Inc-SVD baseline (Li et al., EDBT'10): the SVD-based batch
// SimRank, the incremental factor update, and — most importantly — the
// flaw the reproduced paper proves in Section IV, pinned down exactly as
// in its Examples 2 and 3.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "incsvd/inc_svd.h"
#include "incsvd/svd_simrank.h"
#include "la/svd.h"
#include "simrank/batch_matrix.h"

namespace incsr {
namespace {

using graph::DynamicDiGraph;
using graph::EdgeUpdate;
using graph::UpdateKind;
using incsvd::IncSvd;
using incsvd::IncSvdOptions;
using simrank::SimRankOptions;

SimRankOptions Converged(double damping = 0.6) {
  SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

TEST(SvdSimRank, LosslessFactorsReproduceBatchOnFullRankGraph) {
  // A directed ring has a permutation transition matrix — full rank — so
  // the SVD route must agree with the batch fixed point exactly.
  DynamicDiGraph ring(6);
  for (int v = 0; v < 6; ++v) {
    ASSERT_TRUE(ring.AddEdge(v, (v + 1) % 6).ok());
  }
  auto q = graph::BuildTransition(ring);
  auto factors = la::ComputeSvd(q.ToDense());
  ASSERT_TRUE(factors.ok());
  EXPECT_EQ(factors->rank(), 6u);

  SimRankOptions options = Converged();
  auto s_svd = incsvd::SimRankFromFactors(factors.value(), options);
  ASSERT_TRUE(s_svd.ok());
  la::DenseMatrix s_batch = simrank::BatchMatrix(ring, options);
  EXPECT_LT(la::MaxAbsDiff(s_svd.value(), s_batch), 1e-10);
}

TEST(SvdSimRank, LosslessFactorsAreExactEvenWhenRankDeficient) {
  // The BATCH use of the SVD is exact for any exact factorization (the
  // telescoping Qᵏ = U·W^{k-1}·Σ·Vᵀ needs no orthogonality); only the
  // INCREMENTAL factor update of Eq. (4) is flawed. Verify the former on
  // a rank-deficient citation graph.
  auto stream = graph::PreferentialCitation(
      {.num_nodes = 20, .mean_out_degree = 2.0, .seed = 5});
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(20, stream.value());
  auto q = graph::BuildTransition(g);
  auto factors = la::ComputeSvd(q.ToDense());
  ASSERT_TRUE(factors.ok());
  ASSERT_LT(factors->rank(), 20u) << "test graph should be rank-deficient";

  SimRankOptions options = Converged();
  auto s_svd = incsvd::SimRankFromFactors(factors.value(), options);
  ASSERT_TRUE(s_svd.ok());
  EXPECT_LT(la::MaxAbsDiff(s_svd.value(), simrank::BatchMatrix(g, options)),
            1e-9);
}

TEST(SvdSimRank, FixedPointSolverAgreesWithKronecker) {
  auto stream = graph::ErdosRenyiGnm(12, 30, 17);
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(12, stream.value());
  auto factors = la::ComputeSvd(graph::BuildTransition(g).ToDense());
  ASSERT_TRUE(factors.ok());
  SimRankOptions options = Converged();
  auto kron = incsvd::SimRankFromFactors(factors.value(), options,
                                         incsvd::SmallSolver::kKronecker);
  auto fixed = incsvd::SimRankFromFactors(factors.value(), options,
                                          incsvd::SmallSolver::kFixedPoint);
  ASSERT_TRUE(kron.ok());
  ASSERT_TRUE(fixed.ok());
  EXPECT_LT(la::MaxAbsDiff(kron.value(), fixed.value()), 1e-9);
}

TEST(IncSvdFlaw, PaperExample3ExactReproduction) {
  // Example 3: Q = [[0,1],[0,0]] (edge 1→0 under our convention
  // [Q]_{i,j} = 1/|I(i)|), then an edge insertion with ΔQ = [[0,0],[1,0]].
  // Li et al.'s update leaves the factors unchanged — it misses the new
  // eigenvector entirely — and ‖Q̃ − Ũ·Σ̃·Ṽᵀ‖ = 1.
  DynamicDiGraph g(2);
  ASSERT_TRUE(g.AddEdge(1, 0).ok());  // row 0 of Q becomes [0, 1]

  IncSvdOptions options;
  options.simrank = Converged(0.8);
  auto index = IncSvd::Create(std::move(g), options);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->factors().rank(), 1u);
  EXPECT_LT(index->FactorReconstructionError(), 1e-12);

  // Insert edge (0 → 1): ΔQ = e₂·e₁ᵀ (row 1, col 0), exactly the paper's.
  ASSERT_TRUE(index->ApplyBatch({{UpdateKind::kInsert, 0, 1}}).ok());

  // C_aux = Σ + (Uᵀu)(vᵀV) = [1]: the update is invisible to the factors.
  EXPECT_EQ(index->last_stats().aux_rank, 1u);
  EXPECT_EQ(index->factors().rank(), 1u);
  // The reconstruction misses ΔQ completely: ‖Q̃ − ŨΣ̃Ṽᵀ‖_max = 1.
  EXPECT_NEAR(index->FactorReconstructionError(), 1.0, 1e-10);

  // And the similarity estimate disagrees with the truth: in the true
  // graph 0 and 1 now cite each other, giving s(0,1) > 0 in matrix form,
  // while Inc-SVD still reports the old value.
  auto scores = index->ComputeScores();
  ASSERT_TRUE(scores.ok());
  la::DenseMatrix truth = simrank::BatchMatrix(index->graph(), Converged(0.8));
  EXPECT_GT(la::MaxAbsDiff(scores.value(), truth), 0.05);
}

TEST(IncSvdFlaw, FullRankGraphIsUpdatedExactly) {
  // When Q stays full-rank, Eq. (6) holds and the baseline is exact — the
  // boundary case the paper concedes (at O(n⁶) cost).
  DynamicDiGraph ring(5);
  for (int v = 0; v < 5; ++v) {
    ASSERT_TRUE(ring.AddEdge(v, (v + 1) % 5).ok());
  }
  IncSvdOptions options;
  options.simrank = Converged();
  auto index = IncSvd::Create(std::move(ring), options);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->factors().rank(), 5u);

  // Adding a chord keeps every in-degree >= 1; check rank stayed full and
  // the update stayed exact.
  ASSERT_TRUE(index->ApplyBatch({{UpdateKind::kInsert, 0, 2}}).ok());
  ASSERT_EQ(index->factors().rank(), 5u);
  EXPECT_LT(index->FactorReconstructionError(), 1e-10);
  auto scores = index->ComputeScores();
  ASSERT_TRUE(scores.ok());
  la::DenseMatrix truth = simrank::BatchMatrix(index->graph(), Converged());
  EXPECT_LT(la::MaxAbsDiff(scores.value(), truth), 1e-9);
}

TEST(IncSvdFlaw, RankDeficientUpdateLosesEigenInformation) {
  // On a typical (rank-deficient) citation graph, even the LOSSLESS
  // incremental update drifts from the truth — the paper's headline
  // argument against [1].
  auto stream = graph::PreferentialCitation(
      {.num_nodes = 16, .mean_out_degree = 2.0, .seed = 9});
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(16, stream.value());
  IncSvdOptions options;
  options.simrank = Converged();
  auto index = IncSvd::Create(std::move(g), options);
  ASSERT_TRUE(index.ok());
  ASSERT_LT(index->factors().rank(), 16u);

  Rng rng(31);
  auto insertions = graph::SampleInsertions(index->graph(), 3, &rng);
  ASSERT_TRUE(insertions.ok());
  ASSERT_TRUE(index->ApplyBatch(insertions.value()).ok());
  EXPECT_GT(index->FactorReconstructionError(), 1e-6);
}

TEST(IncSvd, TruncatedRankCapsFactors) {
  auto stream = graph::ErdosRenyiGnm(15, 45, 41);
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(15, stream.value());
  IncSvdOptions options;
  options.simrank = Converged();
  options.target_rank = 5;
  auto index = IncSvd::Create(std::move(g), options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->factors().rank(), 5u);
  ASSERT_TRUE(index->ApplyBatch({{UpdateKind::kInsert, 0, 5}}).ok());
  EXPECT_LE(index->factors().rank(), 5u);
  auto scores = index->ComputeScores();
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->rows(), 15u);
}

TEST(IncSvd, MemoryBudgetProducesResourceExhausted) {
  auto stream = graph::ErdosRenyiGnm(10, 25, 43);
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(10, stream.value());

  // Budget below even the dense Q: factorization itself is refused.
  IncSvdOptions tiny;
  tiny.simrank = Converged();
  tiny.memory_budget_bytes = 64;
  auto refused = IncSvd::Create(g, tiny);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  // Budget that admits the 10×10 dense Q (800 B) but not the r⁴
  // Kronecker system of the scoring step.
  IncSvdOptions medium;
  medium.simrank = Converged();
  medium.memory_budget_bytes = 2000;
  auto index = IncSvd::Create(std::move(g), medium);
  ASSERT_TRUE(index.ok());
  auto scores = index->ComputeScores();
  EXPECT_FALSE(scores.ok());
  EXPECT_EQ(scores.status().code(), StatusCode::kResourceExhausted);
}

TEST(IncSvd, RandomizedFactorizationApproximatesTopRank) {
  auto stream = graph::PreferentialCitation(
      {.num_nodes = 120, .mean_out_degree = 4.0, .seed = 77});
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(120, stream.value());

  IncSvdOptions options;
  options.simrank = Converged();
  options.target_rank = 6;
  options.factorization = incsvd::Factorization::kRandomized;
  auto randomized = IncSvd::Create(g, options);
  ASSERT_TRUE(randomized.ok());
  ASSERT_EQ(randomized->factors().rank(), 6u);

  options.factorization = incsvd::Factorization::kDenseJacobi;
  auto exact = IncSvd::Create(g, options);
  ASSERT_TRUE(exact.ok());

  // Leading singular values agree to a few percent.
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(randomized->factors().sigma[k], exact->factors().sigma[k],
                0.05 * exact->factors().sigma[0] + 1e-9)
        << "sigma[" << k << "]";
  }
  EXPECT_EQ(IncSvd::Create(g, {.simrank = Converged(),
                               .target_rank = 0,
                               .factorization =
                                   incsvd::Factorization::kRandomized})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(IncSvd, FaithfulTensorOrderMatchesFastPath) {
  auto stream = graph::ErdosRenyiGnm(14, 40, 51);
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(14, stream.value());
  IncSvdOptions fast;
  fast.simrank = Converged();
  fast.target_rank = 5;
  IncSvdOptions faithful = fast;
  faithful.faithful_tensor_order = true;
  auto a = IncSvd::Create(g, fast);
  auto b = IncSvd::Create(g, faithful);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto sa = a->ComputeScores();
  auto sb = b->ComputeScores();
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  // Same algebra, different evaluation order.
  EXPECT_LT(la::MaxAbsDiff(sa.value(), sb.value()), 1e-9);
}

TEST(IncSvd, InvalidUpdatesAreRejected) {
  DynamicDiGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  IncSvdOptions options;
  options.simrank = Converged();
  auto index = IncSvd::Create(std::move(g), options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->ApplyBatch({{UpdateKind::kInsert, 0, 1}}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(index->ApplyBatch({{UpdateKind::kDelete, 1, 2}}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(index->ApplyBatch({{UpdateKind::kInsert, 0, 9}}).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace incsr
