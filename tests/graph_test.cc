// Tests for the graph substrate: dynamic digraph mutation, transition
// matrix construction, edge-list IO (including failure injection), and
// update-stream utilities.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "graph/components.h"
#include "graph/digraph.h"
#include "graph/edge_list_io.h"
#include "graph/transition.h"
#include "graph/update_stream.h"

namespace incsr::graph {
namespace {

TEST(DynamicDiGraphTest, AddAndRemoveEdges) {
  DynamicDiGraph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(2, 1).ok());
  EXPECT_TRUE(g.AddEdge(1, 3).ok());
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);

  EXPECT_TRUE(g.RemoveEdge(0, 1).ok());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(DynamicDiGraphTest, DuplicateAndMissingEdgesAreStatusErrors) {
  DynamicDiGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.RemoveEdge(1, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(-1, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.RemoveEdge(0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DynamicDiGraphTest, NeighborsAreSorted) {
  DynamicDiGraph g(5);
  ASSERT_TRUE(g.AddEdge(3, 0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  ASSERT_TRUE(g.AddEdge(4, 0).ok());
  auto in = g.InNeighbors(0);
  ASSERT_EQ(in.size(), 3u);
  EXPECT_EQ(in[0], 1);
  EXPECT_EQ(in[1], 3);
  EXPECT_EQ(in[2], 4);
}

TEST(DynamicDiGraphTest, SelfLoopsAreAllowed) {
  DynamicDiGraph g(2);
  EXPECT_TRUE(g.AddEdge(0, 0).ok());
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(DynamicDiGraphTest, AddNodesGrowsIdSpace) {
  DynamicDiGraph g(2);
  NodeId first = g.AddNodes(3);
  EXPECT_EQ(first, 2);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_TRUE(g.AddEdge(4, 0).ok());
}

TEST(DynamicDiGraphTest, EdgesListsLexicographically) {
  DynamicDiGraph g(3);
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 0}));
}

TEST(TransitionTest, RowsAreUniformOverInNeighbors) {
  DynamicDiGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  la::DynamicRowMatrix q = BuildTransition(g);
  EXPECT_DOUBLE_EQ(q.At(2, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.At(2, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.At(2, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(q.At(1, 0), 0.0);  // node 1 has no in-edges
  // Row sums are 1 for nodes with in-neighbors, 0 otherwise.
  la::Vector ones(4, 1.0);
  la::Vector sums = q.Multiply(ones);
  EXPECT_DOUBLE_EQ(sums[2], 1.0);
  EXPECT_DOUBLE_EQ(sums[1], 0.0);
}

TEST(TransitionTest, CsrAndDynamicAgree) {
  DynamicDiGraph g(6);
  Rng rng(3);
  for (int k = 0; k < 12; ++k) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(6));
    NodeId d = static_cast<NodeId>(rng.NextBounded(6));
    if (s != d) (void)g.AddEdge(s, d);
  }
  EXPECT_EQ(la::MaxAbsDiff(BuildTransition(g).ToDense(),
                           BuildTransitionCsr(g).ToDense()),
            0.0);
}

TEST(TransitionTest, RefreshRowTracksMutation) {
  DynamicDiGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  la::DynamicRowMatrix q = BuildTransition(g);
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  RefreshTransitionRow(g, 2, &q);
  EXPECT_DOUBLE_EQ(q.At(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(q.At(2, 1), 0.5);
  ASSERT_TRUE(g.RemoveEdge(0, 2).ok());
  ASSERT_TRUE(g.RemoveEdge(1, 2).ok());
  RefreshTransitionRow(g, 2, &q);
  EXPECT_EQ(q.nnz(), 0u);
}

TEST(TransitionTest, AdjacencyCountsPaths) {
  // Lemma 1: [A^k]_{i,j} counts length-k paths from i to j.
  DynamicDiGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  la::DenseMatrix a = BuildAdjacencyCsr(g).ToDense();
  la::DenseMatrix a2 = la::Multiply(a, a);
  EXPECT_DOUBLE_EQ(a2(0, 3), 2.0);  // two length-2 paths 0→·→3
  EXPECT_DOUBLE_EQ(a2(0, 1), 0.0);
}

TEST(EdgeListIoTest, ParsesSnapFormat) {
  const std::string text =
      "# Directed graph\n"
      "# src\tdst\n"
      "10 20\n"
      "20\t30\n"
      "\n"
      "10 30\n";
  auto data = ParseEdgeList(text);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graph.num_nodes(), 3u);
  EXPECT_EQ(data->graph.num_edges(), 3u);
  // Remapping is first-appearance order: 10→0, 20→1, 30→2.
  EXPECT_TRUE(data->graph.HasEdge(0, 1));
  EXPECT_TRUE(data->graph.HasEdge(1, 2));
  EXPECT_TRUE(data->graph.HasEdge(0, 2));
}

TEST(EdgeListIoTest, DuplicatesSkippedByDefaultStrictOnRequest) {
  const std::string text = "1 2\n1 2\n";
  auto lax = ParseEdgeList(text);
  ASSERT_TRUE(lax.ok());
  EXPECT_EQ(lax->graph.num_edges(), 1u);
  EXPECT_EQ(lax->duplicates_skipped, 1u);

  EdgeListOptions strict;
  strict.skip_duplicates = false;
  EXPECT_EQ(ParseEdgeList(text, strict).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(EdgeListIoTest, MalformedInputIsRejected) {
  EXPECT_EQ(ParseEdgeList("1\n").status().code(), StatusCode::kIoError);
  EXPECT_EQ(ParseEdgeList("1 2 3\n").status().code(), StatusCode::kIoError);
  EXPECT_EQ(ParseEdgeList("-1 2\n").status().code(), StatusCode::kIoError);
  EXPECT_EQ(ParseEdgeList("a b\n").status().code(), StatusCode::kIoError);
}

TEST(EdgeListIoTest, NoRemapUsesDenseIds) {
  EdgeListOptions options;
  options.remap_ids = false;
  auto data = ParseEdgeList("0 3\n2 1\n", options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graph.num_nodes(), 4u);
  EXPECT_TRUE(data->graph.HasEdge(0, 3));
  EXPECT_TRUE(data->graph.HasEdge(2, 1));
}

TEST(EdgeListIoTest, FileRoundTrip) {
  DynamicDiGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 0).ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "incsr_io_test.txt").string();
  ASSERT_TRUE(WriteEdgeListFile(g, path).ok());
  EdgeListOptions options;
  options.remap_ids = false;
  auto loaded = ReadEdgeListFile(path, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.Edges(), g.Edges());
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadEdgeListFile("/nonexistent/incsr.txt").status().code(),
            StatusCode::kIoError);
}

TEST(UpdateStreamTest, SampleInsertionsAvoidExistingEdges) {
  DynamicDiGraph g(6);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  Rng rng(5);
  auto updates = SampleInsertions(g, 10, &rng);
  ASSERT_TRUE(updates.ok());
  EXPECT_EQ(updates->size(), 10u);
  for (const EdgeUpdate& u : updates.value()) {
    EXPECT_EQ(u.kind, UpdateKind::kInsert);
    EXPECT_NE(u.src, u.dst);
    EXPECT_FALSE(g.HasEdge(u.src, u.dst)) << ToString(u);
  }
}

TEST(UpdateStreamTest, SampleDeletionsPickExistingEdges) {
  DynamicDiGraph g(5);
  for (int s = 0; s < 5; ++s) {
    for (int d = 0; d < 5; ++d) {
      if (s != d) ASSERT_TRUE(g.AddEdge(s, d).ok());
    }
  }
  Rng rng(6);
  auto updates = SampleDeletions(g, 7, &rng);
  ASSERT_TRUE(updates.ok());
  EXPECT_EQ(updates->size(), 7u);
  std::set<std::pair<NodeId, NodeId>> unique;
  for (const EdgeUpdate& u : updates.value()) {
    EXPECT_EQ(u.kind, UpdateKind::kDelete);
    EXPECT_TRUE(g.HasEdge(u.src, u.dst));
    unique.insert({u.src, u.dst});
  }
  EXPECT_EQ(unique.size(), 7u);  // no repeats
}

TEST(UpdateStreamTest, SamplingBoundsAreChecked) {
  DynamicDiGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  Rng rng(7);
  EXPECT_FALSE(SampleInsertions(g, 5, &rng).ok());  // only 1 slot left
  EXPECT_FALSE(SampleDeletions(g, 2, &rng).ok());   // only 1 edge
}

TEST(UpdateStreamTest, ApplyAndDiffRoundTrip) {
  DynamicDiGraph from(4);
  ASSERT_TRUE(from.AddEdge(0, 1).ok());
  ASSERT_TRUE(from.AddEdge(1, 2).ok());
  DynamicDiGraph to(4);
  ASSERT_TRUE(to.AddEdge(1, 2).ok());
  ASSERT_TRUE(to.AddEdge(2, 3).ok());
  ASSERT_TRUE(to.AddEdge(3, 0).ok());

  auto diff = DiffGraphs(from, to);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 3u);  // one delete, two inserts
  DynamicDiGraph replay = from;
  ASSERT_TRUE(ApplyUpdates(diff.value(), &replay).ok());
  EXPECT_EQ(replay.Edges(), to.Edges());
}

TEST(UpdateStreamTest, DiffRequiresSameNodeCount) {
  EXPECT_FALSE(DiffGraphs(DynamicDiGraph(2), DynamicDiGraph(3)).ok());
}

TEST(ComponentsTest, IsolatedNodesAreSingletonComponents) {
  ComponentDecomposition wcc = WeaklyConnectedComponents(DynamicDiGraph(4));
  EXPECT_EQ(wcc.num_components(), 4u);
  EXPECT_EQ(wcc.component_of, (std::vector<std::int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(wcc.sizes, (std::vector<std::size_t>{1, 1, 1, 1}));
}

TEST(ComponentsTest, EdgeDirectionIsIgnored) {
  // 0 -> 1 <- 2 is one weak component even though 0 and 2 share no
  // directed path.
  DynamicDiGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  ComponentDecomposition wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components(), 2u);
  EXPECT_EQ(wcc.component_of[0], wcc.component_of[2]);
  EXPECT_NE(wcc.component_of[0], wcc.component_of[3]);
}

TEST(ComponentsTest, ComponentIdsFollowSmallestMemberOrder) {
  // Components are numbered by their smallest node id, independent of the
  // edge insertion history.
  DynamicDiGraph g(6);
  ASSERT_TRUE(g.AddEdge(5, 3).ok());  // component of {3, 5}
  ASSERT_TRUE(g.AddEdge(4, 0).ok());  // component of {0, 4}
  ComponentDecomposition wcc = WeaklyConnectedComponents(g);
  ASSERT_EQ(wcc.num_components(), 4u);
  EXPECT_EQ(wcc.component_of, (std::vector<std::int32_t>{0, 1, 2, 3, 0, 3}));
  EXPECT_EQ(wcc.sizes, (std::vector<std::size_t>{2, 1, 1, 2}));
}

TEST(ComponentsTest, EmptyGraph) {
  ComponentDecomposition wcc = WeaklyConnectedComponents(DynamicDiGraph());
  EXPECT_EQ(wcc.num_components(), 0u);
  EXPECT_TRUE(wcc.component_of.empty());
}

}  // namespace
}  // namespace incsr::graph
