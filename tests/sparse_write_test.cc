// Property suite for the sparse-native write path (docs/score_store.md):
//   - RowWriter sessions: merge commits keep rows sparse and reproduce the
//     densified byte sequence exactly (first-touch seeding + in-order
//     deltas), exact +0.0 merge results elide losslessly, the max_density
//     gate spills to dense, kernels may spill explicitly via Dense(), and
//     an untouched session is a no-op.
//   - Counter split: write-path spills (rows_spilled_dense) and explicit
//     promotions (rows_densified) count separately; their sum is the old
//     conflated counter. epoch_peak_dense_bytes watermarks the transient
//     dense footprint and resets at Publish().
//   - Write-mode equivalence through the service: sparse-native vs the
//     legacy densify-on-write mode agree bitwise at eps = 0 and each stays
//     within its own recorded error bound at eps > 0, per UpdateAlgorithm.
//     CI runs this suite at INCSR_THREADS 1 and 4 under TSan and ASan.
//   - Concurrency: pinned View bytes survive concurrent sparse merge
//     commits (including the writer-private in-place swap) and tier moves.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "graph/generators.h"
#include "graph/update_stream.h"
#include "la/row_writer.h"
#include "la/score_store.h"
#include "service/simrank_service.h"
#include "simrank/options.h"

namespace incsr {
namespace {

la::DenseMatrix TestMatrix(std::size_t rows, std::size_t cols,
                           std::uint64_t seed = 7) {
  Rng rng(seed);
  la::DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = m.RowPtr(i);
    for (std::size_t j = 0; j < cols; ++j) row[j] = rng.NextDouble();
  }
  return m;
}

// All-sparse store with one diagonal entry per row — the CreateIsolated
// shape, and the simplest base for write-session assertions.
la::ScoreStore SparseIdentity(std::size_t n, double value) {
  la::ScoreStore store = la::ScoreStore::ScaledIdentity(n, value);
  store.set_sparsity({.epsilon = 0.0, .max_density = 1.0});
  return store;
}

// ---- RowWriter sessions ----------------------------------------------------

TEST(RowWriterSession, SeedsFromBaseAndAccumulatesInEmissionOrder) {
  la::ScoreStore store = SparseIdentity(8, 0.4);
  la::RowWriter w;
  store.BeginWriteRow(2, &w);
  EXPECT_FALSE(w.is_dense());
  w.Add(2, 0.1);   // existing entry: accumulator seeds with 0.4
  w.Add(5, 0.25);  // absent entry: seeds with exact +0.0
  w.Add(5, 0.25);
  store.CommitWriteRow(&w);

  EXPECT_TRUE(store.RowIsSparse(2));
  EXPECT_EQ(store(2, 2), 0.4 + 0.1);  // same FP sequence as a dense row
  EXPECT_EQ(store(2, 5), (0.0 + 0.25) + 0.25);
  EXPECT_EQ(store.stats().sparse_write_merges, 1u);
  EXPECT_EQ(store.stats().rows_spilled_dense, 0u);
  EXPECT_EQ(store.stats().rows_sparse, 8u);
}

TEST(RowWriterSession, IdenticalSessionsMatchDensifyOnWriteBitwise) {
  const std::size_t n = 16;
  la::DenseMatrix initial(n, n);  // zero-initialized
  for (std::size_t i = 0; i < n; ++i) initial.RowPtr(i)[i] = 0.4;

  // Two stores, same bytes, opposite write modes; replay one identical
  // session sequence (repeat columns, overlapping entries) through both.
  auto run = [&](la::ScoreStore::WriteMode mode) {
    la::ScoreStore store((la::DenseMatrix(initial)));
    store.set_sparsity({.epsilon = 0.0, .max_density = 1.0});
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(store.SparsifyRow(i, {}));
    store.set_write_mode(mode);
    Rng rng(77);
    la::RowWriter w;
    for (int round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        store.BeginWriteRow(i, &w);
        for (int k = 0; k < 6; ++k) {
          w.Add(rng.NextBounded(n), rng.NextDouble() - 0.5);
        }
        store.CommitWriteRow(&w);
      }
    }
    return store.ToDense();
  };
  la::DenseMatrix native = run(la::ScoreStore::WriteMode::kSparseNative);
  la::DenseMatrix legacy = run(la::ScoreStore::WriteMode::kDensifyOnWrite);
  EXPECT_TRUE(la::BitwiseEqual(native, legacy));
}

TEST(RowWriterSession, ExactPositiveZeroMergeResultElidesLosslessly) {
  la::ScoreStore store = SparseIdentity(8, 0.5);
  const std::uint64_t payload_before = store.stats().sparse_payload_bytes;
  la::RowWriter w;
  store.BeginWriteRow(3, &w);
  w.Add(3, -0.5);  // 0.5 + (-0.5) == +0.0 exactly: the entry vanishes
  store.CommitWriteRow(&w);

  EXPECT_TRUE(store.RowIsSparse(3));
  EXPECT_EQ(store(3, 3), 0.0);
  EXPECT_LT(store.stats().sparse_payload_bytes, payload_before);
  // Lossless: nothing entered the error ledger.
  EXPECT_EQ(store.stats().eps_drops, 0u);
  EXPECT_EQ(store.stats().max_error_bound, 0.0);
}

TEST(RowWriterSession, MaxDensityGateSpillsToDense) {
  la::ScoreStore store = SparseIdentity(8, 0.4);
  store.set_sparsity({.epsilon = 0.0, .max_density = 0.25});  // max_nnz = 2
  la::RowWriter w;
  store.BeginWriteRow(1, &w);
  for (std::size_t col = 2; col < 6; ++col) w.Add(col, 0.125);
  store.CommitWriteRow(&w);

  EXPECT_FALSE(store.RowIsSparse(1));
  EXPECT_EQ(store.stats().rows_spilled_dense, 1u);
  EXPECT_EQ(store.stats().rows_densified, 0u);  // not a tier promotion
  EXPECT_EQ(store.stats().rows_sparse, 7u);
  EXPECT_EQ(store(1, 1), 0.4);  // base entry survived the spill gather
  for (std::size_t col = 2; col < 6; ++col) EXPECT_EQ(store(1, col), 0.125);
}

TEST(RowWriterSession, KernelSpillViaDensePointer) {
  la::ScoreStore store = SparseIdentity(8, 0.4);
  la::RowWriter w;
  store.BeginWriteRow(1, &w);
  w.Add(6, 0.2);  // accumulated before the spill: must flush onto it
  double* row = w.Dense();
  EXPECT_TRUE(w.is_dense());
  EXPECT_EQ(row[1], 0.4);  // gathered base
  EXPECT_EQ(row[6], 0.2);  // flushed accumulator
  row[0] += 0.3;
  store.CommitWriteRow(&w);

  EXPECT_FALSE(store.RowIsSparse(1));
  EXPECT_EQ(store.stats().rows_spilled_dense, 1u);
  EXPECT_EQ(store(1, 0), 0.3);
  EXPECT_EQ(store(1, 1), 0.4);
  EXPECT_EQ(store(1, 6), 0.2);
}

TEST(RowWriterSession, UntouchedSessionIsANoOp) {
  la::ScoreStore store = SparseIdentity(8, 0.4);
  la::ScoreStore::View view = store.Publish();
  la::RowWriter w;
  store.BeginWriteRow(4, &w);
  store.CommitWriteRow(&w);

  EXPECT_TRUE(store.RowIsSparse(4));
  EXPECT_EQ(store.stats().sparse_write_merges, 0u);
  EXPECT_EQ(store.stats().rows_spilled_dense, 0u);
  // The readable bytes never changed, so the touched delta stays empty.
  EXPECT_TRUE(store.touched_rows().empty());
  EXPECT_EQ(view(4, 4), 0.4);
}

TEST(RowWriterSession, CommitCopiesOnWriteThenMergesInPlace) {
  la::ScoreStore store = SparseIdentity(8, 0.4);
  la::ScoreStore::View view = store.Publish();
  la::RowWriter w;

  // First commit after a publish: the shared block is displaced (COW).
  store.BeginWriteRow(2, &w);
  w.Add(5, 0.7);
  store.CommitWriteRow(&w);
  ASSERT_EQ(store.touched_rows().size(), 1u);
  EXPECT_EQ(store.touched_rows()[0], 2);

  // Second commit in the same epoch rides the writer-private in-place
  // swap; the pinned view must keep reading the pre-publish bytes.
  store.BeginWriteRow(2, &w);
  w.Add(6, 0.1);
  store.CommitWriteRow(&w);

  EXPECT_EQ(view(2, 5), 0.0);
  EXPECT_EQ(view(2, 6), 0.0);
  EXPECT_EQ(store(2, 5), 0.7);
  EXPECT_EQ(store(2, 6), 0.1);
  EXPECT_TRUE(store.RowIsSparse(2));
  EXPECT_EQ(store.stats().sparse_write_merges, 2u);
  // Still exactly one touched record: the in-place path is unshared.
  EXPECT_EQ(store.touched_rows().size(), 1u);
}

// ---- Counter split and the transient-dense watermark -----------------------

TEST(StoreCounters, WriteSpillsAndPromotionsCountSeparately) {
  la::ScoreStore store = SparseIdentity(8, 0.4);
  store.MutableRowPtr(0)[3] = 1.0;  // legacy shim: a write-path spill
  ASSERT_TRUE(store.DensifyRow(1));  // an explicit tier promotion
  EXPECT_EQ(store.stats().rows_spilled_dense, 1u);
  EXPECT_EQ(store.stats().rows_densified, 1u);
  // Sum continuity with the pre-split conflated counter.
  EXPECT_EQ(store.stats().rows_spilled_dense + store.stats().rows_densified,
            2u);
  EXPECT_EQ(store.stats().rows_sparse, 6u);
}

TEST(StoreCounters, EpochPeakDenseBytesWatermarksAndResets) {
  const std::size_t n = 8;
  la::ScoreStore store = SparseIdentity(n, 0.4);
  store.Publish();
  EXPECT_EQ(store.stats().epoch_peak_dense_bytes, 0u);

  // A transient densify bumps the watermark...
  store.MutableRowPtr(0)[3] = 1.0;
  const std::uint64_t one_row = n * sizeof(double);
  EXPECT_EQ(store.stats().epoch_peak_dense_bytes, one_row);
  // ...and re-sparsifying does not lower it: it records the PEAK.
  ASSERT_TRUE(store.SparsifyRow(0, {}));
  EXPECT_EQ(store.stats().epoch_peak_dense_bytes, one_row);

  // Publish restarts the watermark at the resident footprint.
  store.Publish();
  EXPECT_EQ(store.stats().epoch_peak_dense_bytes, 0u);
}

// ---- Write-mode equivalence through the service -----------------------------

std::vector<graph::EdgeUpdate> InsertStream(const graph::DynamicDiGraph& graph,
                                            std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  auto ins = graph::SampleInsertions(graph, count, &rng);
  INCSR_CHECK(ins.ok(), "sampling failed");
  return std::move(ins).value();
}

service::ServiceOptions TieredOptions(double epsilon) {
  service::ServiceOptions options;
  options.max_batch = 8;
  options.sparse.enabled = true;
  options.sparse.epsilon = epsilon;
  options.sparse.max_density = 1.0;  // compress whenever allowed
  options.sparse.hot_reads = 1;      // demote anything the sketch missed
  options.sparse.scan_rows_per_publish = 1024;
  return options;
}

// Replays the stream with unit batches (Flush per Submit pins batch
// boundaries, hence FP order — sparse_store_test's idiom) and returns the
// final scores plus stats.
struct ModeRun {
  la::DenseMatrix s;
  service::ServiceStats stats;
};

ModeRun RunMode(const graph::DynamicDiGraph& graph,
                const std::vector<graph::EdgeUpdate>& stream,
                core::UpdateAlgorithm algorithm,
                const service::ServiceOptions& options) {
  simrank::SimRankOptions sr;
  sr.damping = 0.6;
  sr.iterations = 8;
  auto index = core::DynamicSimRank::Create(graph, sr, algorithm);
  EXPECT_TRUE(index.ok());
  auto service =
      service::SimRankService::Create(std::move(index).value(), options);
  EXPECT_TRUE(service.ok());
  for (const graph::EdgeUpdate& u : stream) {
    EXPECT_TRUE((*service)->Submit(u).ok());
    EXPECT_TRUE((*service)->Flush().ok());
  }
  ModeRun out;
  out.s = (*service)->Snapshot()->scores.ToDense();
  out.stats = (*service)->stats();
  return out;
}

TEST(WriteModeEquivalence, BitwiseAtEpsilonZeroPerAlgorithm) {
  auto seed = graph::ErdosRenyiGnm(20, 50, 5);
  ASSERT_TRUE(seed.ok());
  auto graph = graph::MaterializeGraph(20, seed.value());
  auto stream = InsertStream(graph, 12, 17);
  for (auto algorithm :
       {core::UpdateAlgorithm::kIncSR, core::UpdateAlgorithm::kIncUSR}) {
    service::ServiceOptions native_options = TieredOptions(0.0);
    ModeRun native = RunMode(graph, stream, algorithm, native_options);
    service::ServiceOptions legacy_options = TieredOptions(0.0);
    legacy_options.sparse.densify_on_write = true;
    ModeRun legacy = RunMode(graph, stream, algorithm, legacy_options);

    EXPECT_TRUE(la::BitwiseEqual(native.s, legacy.s));
    EXPECT_EQ(native.stats.sparse_max_error_bound, 0.0);
    EXPECT_EQ(legacy.stats.sparse_max_error_bound, 0.0);
    // Each mode actually took its own write path.
    EXPECT_EQ(legacy.stats.sparse_write_merges, 0u);
    EXPECT_GT(legacy.stats.rows_spilled_dense, 0u);
    if (algorithm == core::UpdateAlgorithm::kIncSR) {
      EXPECT_GT(native.stats.sparse_write_merges, 0u);
    }
  }
}

TEST(WriteModeEquivalence, WithinRecordedBoundAtEpsilonPerAlgorithm) {
  auto seed = graph::ErdosRenyiGnm(40, 60, 9);
  ASSERT_TRUE(seed.ok());
  auto graph = graph::MaterializeGraph(40, seed.value());
  auto stream = InsertStream(graph, 16, 23);
  for (auto algorithm :
       {core::UpdateAlgorithm::kIncSR, core::UpdateAlgorithm::kIncUSR}) {
    // Exact reference: same unit batches, sparsity off entirely.
    service::ServiceOptions dense_options = TieredOptions(1e-4);
    dense_options.sparse.enabled = false;
    ModeRun exact = RunMode(graph, stream, algorithm, dense_options);
    for (bool densify_on_write : {false, true}) {
      service::ServiceOptions options = TieredOptions(1e-4);
      options.sparse.densify_on_write = densify_on_write;
      ModeRun run = RunMode(graph, stream, algorithm, options);
      EXPECT_GT(run.stats.rows_sparse, 0u);
      double max_err = 0.0;
      for (std::size_t i = 0; i < exact.s.rows(); ++i) {
        for (std::size_t j = 0; j < exact.s.cols(); ++j) {
          max_err =
              std::max(max_err, std::abs(run.s(i, j) - exact.s(i, j)));
        }
      }
      EXPECT_LE(max_err, run.stats.sparse_max_error_bound + 1e-15)
          << "densify_on_write = " << densify_on_write;
    }
  }
}

// ---- Concurrency: pinned views vs sparse merge commits ----------------------

TEST(WriteModeConcurrency, PinnedViewStaysByteStableUnderMergeCommits) {
  const std::size_t n = 24;
  la::ScoreStore store = SparseIdentity(n, 0.4);

  std::mutex mu;
  auto latest = std::make_shared<const la::ScoreStore::View>(store.Publish());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checks{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      la::Vector scratch;
      do {
        std::shared_ptr<const la::ScoreStore::View> pinned;
        {
          std::lock_guard<std::mutex> lock(mu);
          pinned = latest;
        }
        // Checksum twice with merge commits racing in between; a commit
        // that mutated shared bytes diverges the sums.
        double sum1 = 0.0;
        double sum2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double* row = pinned->ReadRow(i, &scratch);
          for (std::size_t j = 0; j < n; ++j) sum1 += row[j];
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double* row = pinned->ReadRow(i, &scratch);
          for (std::size_t j = 0; j < n; ++j) sum2 += row[j];
        }
        INCSR_CHECK(sum1 == sum2, "pinned view bytes changed");
        checks.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  Rng rng(55);
  la::RowWriter w;
  for (int epoch = 0; epoch < 200; ++epoch) {
    // Merge-write a band (COW on the first commit per epoch, then the
    // writer-private in-place swap), and churn tiers through the rest.
    for (std::size_t i = 0; i < n; ++i) {
      switch ((i + static_cast<std::size_t>(epoch)) % 3) {
        case 0:
          store.BeginWriteRow(i, &w);
          w.Add(rng.NextBounded(n), rng.NextDouble() - 0.5);
          w.Add(rng.NextBounded(n), rng.NextDouble() - 0.5);
          store.CommitWriteRow(&w);
          break;
        case 1:
          store.DensifyRow(i);
          break;
        default:
          store.SparsifyRow(i, {});
      }
    }
    auto next = std::make_shared<const la::ScoreStore::View>(store.Publish());
    std::lock_guard<std::mutex> lock(mu);
    latest = std::move(next);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(checks.load(), 0u);
  EXPECT_GT(store.stats().sparse_write_merges, 0u);
  EXPECT_GT(store.stats().rows_densified, 0u);
  EXPECT_GT(store.stats().rows_sparsified, 0u);
}

}  // namespace
}  // namespace incsr
