// Tests for the one-sided Jacobi SVD: reconstruction, orthonormality,
// rank-revealing behaviour, truncation, and the exact 2×2 case from the
// paper's Example 2.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/dense_matrix.h"
#include "la/svd.h"

namespace incsr::la {
namespace {

DenseMatrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

// ‖XᵀX − I‖_max: column orthonormality defect.
double OrthonormalityDefect(const DenseMatrix& x) {
  DenseMatrix gram = MultiplyTransposeA(x, x);
  gram.AddScaledIdentity(-1.0);
  return gram.MaxAbs();
}

TEST(SvdTest, PaperExample2) {
  // Q = [[0, 1], [0, 0]] has the lossless SVD U = [1,0]ᵀ, Σ = [1],
  // V = [0,1]ᵀ; crucially U·Uᵀ ≠ I₂ while Uᵀ·U = I₁ — the rank-deficiency
  // fact Section IV of the paper builds on.
  DenseMatrix q = DenseMatrix::FromRows({{0, 1}, {0, 0}});
  auto svd = ComputeSvd(q);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd->rank(), 1u);
  EXPECT_NEAR(svd->sigma[0], 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(svd->u(0, 0)), 1.0, 1e-12);
  EXPECT_NEAR(svd->u(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(std::fabs(svd->v(1, 0)), 1.0, 1e-12);
  EXPECT_NEAR(svd->v(0, 0), 0.0, 1e-12);

  // Uᵀ·U = I_rank but U·Uᵀ ≠ I_n.
  EXPECT_LT(OrthonormalityDefect(svd->u), 1e-12);
  DenseMatrix uut = MultiplyTransposeB(svd->u, svd->u);
  uut.AddScaledIdentity(-1.0);
  EXPECT_NEAR(uut.MaxAbs(), 1.0, 1e-12);  // ‖U·Uᵀ − I‖ = 1, not small

  EXPECT_LT(MaxAbsDiff(svd->Reconstruct(), q), 1e-12);
}

TEST(SvdTest, DiagonalMatrix) {
  DenseMatrix d = DenseMatrix::Diagonal(Vector{3.0, 1.0, 2.0});
  auto svd = ComputeSvd(d);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd->rank(), 3u);
  EXPECT_NEAR(svd->sigma[0], 3.0, 1e-12);
  EXPECT_NEAR(svd->sigma[1], 2.0, 1e-12);
  EXPECT_NEAR(svd->sigma[2], 1.0, 1e-12);
  EXPECT_LT(MaxAbsDiff(svd->Reconstruct(), d), 1e-12);
}

struct SvdCase {
  std::uint64_t seed;
  std::size_t rows;
  std::size_t cols;
};

class SvdPropertyTest : public ::testing::TestWithParam<SvdCase> {};

TEST_P(SvdPropertyTest, ReconstructionAndOrthonormality) {
  const SvdCase param = GetParam();
  Rng rng(param.seed);
  DenseMatrix a = RandomMatrix(param.rows, param.cols, &rng);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->rank(), std::min(param.rows, param.cols));
  const double scale = a.MaxAbs();
  EXPECT_LT(MaxAbsDiff(svd->Reconstruct(), a), 1e-10 * (1.0 + scale));
  EXPECT_LT(OrthonormalityDefect(svd->u), 1e-10);
  EXPECT_LT(OrthonormalityDefect(svd->v), 1e-10);
  // Singular values are non-increasing and positive.
  for (std::size_t k = 1; k < svd->rank(); ++k) {
    EXPECT_LE(svd->sigma[k], svd->sigma[k - 1] + 1e-12);
    EXPECT_GT(svd->sigma[k], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPropertyTest,
    ::testing::Values(SvdCase{1, 6, 6}, SvdCase{2, 10, 4}, SvdCase{3, 4, 10},
                      SvdCase{4, 20, 20}, SvdCase{5, 1, 5}, SvdCase{6, 5, 1},
                      SvdCase{7, 30, 17}, SvdCase{8, 17, 30}));

TEST(SvdTest, RankDeficientMatrixIsDetected) {
  Rng rng(21);
  // Build a 10×10 matrix of rank exactly 3.
  DenseMatrix left = RandomMatrix(10, 3, &rng);
  DenseMatrix right = RandomMatrix(3, 10, &rng);
  DenseMatrix a = Multiply(left, right);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->rank(), 3u);
  EXPECT_LT(MaxAbsDiff(svd->Reconstruct(), a), 1e-9 * (1.0 + a.MaxAbs()));

  auto rank = NumericalRank(a);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank.value(), 3u);
}

TEST(SvdTest, TargetRankTruncatesToBestApproximation) {
  Rng rng(22);
  DenseMatrix a = RandomMatrix(12, 12, &rng);
  SvdOptions options;
  options.target_rank = 4;
  auto truncated = ComputeSvd(a, options);
  ASSERT_TRUE(truncated.ok());
  ASSERT_EQ(truncated->rank(), 4u);
  auto full = ComputeSvd(a);
  ASSERT_TRUE(full.ok());
  // Eckart-Young: the truncation error in Frobenius norm equals the norm
  // of the dropped singular values.
  DenseMatrix err = truncated->Reconstruct();
  err.AddScaled(-1.0, a);
  double dropped = 0.0;
  for (std::size_t k = 4; k < full->rank(); ++k) {
    dropped += full->sigma[k] * full->sigma[k];
  }
  EXPECT_NEAR(err.FrobeniusNorm(), std::sqrt(dropped), 1e-8);
}

TEST(SvdTest, ZeroMatrixHasRankZero) {
  DenseMatrix zero(5, 5);
  auto svd = ComputeSvd(zero);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->rank(), 0u);
  EXPECT_LT(MaxAbsDiff(svd->Reconstruct(), zero), 1e-15);
}

TEST(SvdTest, EmptyMatrixIsRejected) {
  DenseMatrix empty;
  EXPECT_EQ(ComputeSvd(empty).status().code(), StatusCode::kInvalidArgument);
}

TEST(SvdTest, SingularValuesMatchEigenvaluesOfGram) {
  Rng rng(23);
  DenseMatrix a = RandomMatrix(8, 8, &rng);
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  // tr(AᵀA) = Σ σ².
  DenseMatrix gram = MultiplyTransposeA(a, a);
  double trace = 0.0;
  for (std::size_t i = 0; i < 8; ++i) trace += gram(i, i);
  double sum_sq = 0.0;
  for (std::size_t k = 0; k < svd->rank(); ++k) {
    sum_sq += svd->sigma[k] * svd->sigma[k];
  }
  EXPECT_NEAR(trace, sum_sq, 1e-9 * (1.0 + trace));
}

}  // namespace
}  // namespace incsr::la
