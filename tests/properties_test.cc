// Cross-cutting property sweeps: SimRank invariants and incremental
// exactness over every generator family the library ships, plus façade
// behaviours that earlier suites don't pin down.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "simrank/batch_matrix.h"
#include "simrank/batch_naive.h"

namespace incsr {
namespace {

using core::DynamicSimRank;
using core::UpdateAlgorithm;
using graph::DynamicDiGraph;
using simrank::SimRankOptions;

SimRankOptions Converged(double damping = 0.6) {
  SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

enum class Family { kErdosRenyi, kCitation, kRmat, kLinkage };

struct FamilyCase {
  Family family;
  std::uint64_t seed;
};

DynamicDiGraph MakeFamilyGraph(const FamilyCase& param) {
  switch (param.family) {
    case Family::kErdosRenyi: {
      auto stream = graph::ErdosRenyiGnm(30, 90, param.seed);
      INCSR_CHECK(stream.ok(), "er");
      return graph::MaterializeGraph(30, stream.value());
    }
    case Family::kCitation: {
      auto stream = graph::PreferentialCitation(
          {.num_nodes = 30, .mean_out_degree = 3.0, .seed = param.seed});
      INCSR_CHECK(stream.ok(), "cite");
      return graph::MaterializeGraph(30, stream.value());
    }
    case Family::kRmat: {
      auto stream = graph::Rmat(
          {.scale = 5, .num_edges = 90, .seed = param.seed});
      INCSR_CHECK(stream.ok(), "rmat");
      return graph::MaterializeGraph(32, stream.value());
    }
    case Family::kLinkage: {
      auto stream = graph::EvolvingLinkage({.num_nodes = 30,
                                            .num_edges = 90,
                                            .num_communities = 3,
                                            .seed = param.seed});
      INCSR_CHECK(stream.ok(), "linkage");
      return graph::MaterializeGraph(30, stream.value());
    }
  }
  INCSR_CHECK(false, "unreachable");
  return DynamicDiGraph(0);
}

class GeneratorFamilySweep : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(GeneratorFamilySweep, MatrixFormInvariants) {
  DynamicDiGraph g = MakeFamilyGraph(GetParam());
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  const std::size_t n = g.num_nodes();
  const double c = options.damping;

  EXPECT_TRUE(s.IsSymmetric(1e-12));
  for (std::size_t i = 0; i < n; ++i) {
    // Matrix-form diagonal lies in [1−C, 1]; off-diagonals in [0, 1].
    EXPECT_GE(s(i, i), 1.0 - c - 1e-12);
    EXPECT_LE(s(i, i), 1.0 + 1e-12);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_GE(s(i, j), -1e-15);
      EXPECT_LE(s(i, j), 1.0 + 1e-12);
    }
  }
  // Fixed-point residual.
  la::CsrMatrix q = graph::BuildTransitionCsr(g);
  la::DenseMatrix qs = q.MultiplyDense(s);
  la::DenseMatrix residual = q.MultiplyDense(qs.Transpose()).Transpose();
  residual.Scale(c);
  residual.AddScaledIdentity(1.0 - c);
  EXPECT_LT(la::MaxAbsDiff(residual, s), 1e-11);
}

TEST_P(GeneratorFamilySweep, IncrementalExactnessUnderChurn) {
  DynamicDiGraph g = MakeFamilyGraph(GetParam());
  SimRankOptions options = Converged();
  auto index = DynamicSimRank::Create(g, options);
  ASSERT_TRUE(index.ok());

  Rng rng(GetParam().seed ^ 0x5555);
  for (int round = 0; round < 6; ++round) {
    graph::EdgeUpdate update;
    if (index->graph().num_edges() > 10 && rng.NextBernoulli(0.5)) {
      auto del = graph::SampleDeletions(index->graph(), 1, &rng);
      ASSERT_TRUE(del.ok());
      update = del.value()[0];
    } else {
      auto ins = graph::SampleInsertions(index->graph(), 1, &rng);
      ASSERT_TRUE(ins.ok());
      update = ins.value()[0];
    }
    ASSERT_TRUE(index->ApplyUpdate(update).ok()) << graph::ToString(update);
  }
  la::DenseMatrix expected = simrank::BatchMatrix(index->graph(), options);
  EXPECT_LT(la::MaxAbsDiff(index->scores(), expected), 1e-8);
}

std::string FamilyCaseName(const ::testing::TestParamInfo<FamilyCase>& info) {
  static const char* kNames[] = {"ErdosRenyi", "Citation", "Rmat", "Linkage"};
  return std::string(kNames[static_cast<int>(info.param.family)]) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorFamilySweep,
    ::testing::Values(FamilyCase{Family::kErdosRenyi, 1},
                      FamilyCase{Family::kErdosRenyi, 2},
                      FamilyCase{Family::kCitation, 1},
                      FamilyCase{Family::kCitation, 2},
                      FamilyCase{Family::kRmat, 1},
                      FamilyCase{Family::kRmat, 2},
                      FamilyCase{Family::kLinkage, 1},
                      FamilyCase{Family::kLinkage, 2}),
    FamilyCaseName);

TEST(FacadeProperties, CoalescedBatchMatchesSequentialFacadePath) {
  auto stream = graph::ErdosRenyiGnm(20, 60, 77);
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(20, stream.value());
  SimRankOptions options = Converged();

  auto a = DynamicSimRank::Create(g, options, UpdateAlgorithm::kIncSR);
  auto b = DynamicSimRank::Create(g, options, UpdateAlgorithm::kIncSR);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  Rng rng(78);
  auto batch = graph::SampleInsertions(g, 12, &rng);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(a->ApplyBatch(batch.value()).ok());
  ASSERT_TRUE(b->ApplyBatchCoalesced(batch.value()).ok());
  EXPECT_LT(la::MaxAbsDiff(a->scores(), b->scores()), 1e-10);
}

TEST(FacadeProperties, CoalescedBatchRequiresIncSrMode) {
  auto index = DynamicSimRank::Create(DynamicDiGraph(4), Converged(),
                                      UpdateAlgorithm::kIncUSR);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->ApplyBatchCoalesced({}).code(), StatusCode::kNotSupported);
}

TEST(FacadeProperties, CreateValidatesOptions) {
  SimRankOptions bad;
  bad.damping = 1.5;
  EXPECT_FALSE(DynamicSimRank::Create(DynamicDiGraph(3), bad).ok());
  bad.damping = 0.6;
  bad.iterations = 0;
  EXPECT_FALSE(DynamicSimRank::Create(DynamicDiGraph(3), bad).ok());
}

TEST(FacadeProperties, FromStateValidatesShape) {
  la::DenseMatrix wrong(2, 2);
  EXPECT_FALSE(
      DynamicSimRank::FromState(DynamicDiGraph(3), wrong, Converged()).ok());
}

TEST(FacadeProperties, IterativeFormDominatesMatrixFormOffDiagonal) {
  // Known relationship: both forms share the series structure but the
  // iterative form pins the diagonal to 1 (>= the matrix form's diagonal),
  // which propagates to >= off-diagonal scores as well.
  auto stream = graph::ErdosRenyiGnm(15, 45, 5);
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = graph::MaterializeGraph(15, stream.value());
  SimRankOptions options;
  options.iterations = 30;
  la::DenseMatrix iterative = simrank::BatchNaive(g, options);
  la::DenseMatrix matrix = simrank::BatchMatrix(g, options);
  for (std::size_t i = 0; i < 15; ++i) {
    for (std::size_t j = 0; j < 15; ++j) {
      EXPECT_GE(iterative(i, j), matrix(i, j) - 1e-12)
          << "(" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace incsr
