// Tests for coalesced batch updates: the generalized rank-one row update
// must agree bitwise-closely with the unit-update decomposition and with
// batch recomputation, across insert-only, delete-only, and mixed groups.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/coalesced_update.h"
#include "core/dynamic_simrank.h"
#include "core/inc_sr.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "graph/update_stream.h"
#include "simrank/batch_matrix.h"

namespace incsr::core {
namespace {

using graph::DynamicDiGraph;
using graph::EdgeUpdate;
using graph::UpdateKind;
using simrank::SimRankOptions;

SimRankOptions Converged(double damping = 0.6) {
  SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

DynamicDiGraph TestGraph(std::uint64_t seed = 3, std::size_t n = 16,
                         std::size_t m = 48) {
  auto stream = graph::ErdosRenyiGnm(n, m, seed);
  INCSR_CHECK(stream.ok(), "generator");
  return graph::MaterializeGraph(n, stream.value());
}

TEST(CoalesceByTarget, GroupsPreserveOrder) {
  std::vector<EdgeUpdate> batch = {
      {UpdateKind::kInsert, 1, 5}, {UpdateKind::kInsert, 2, 7},
      {UpdateKind::kInsert, 3, 5}, {UpdateKind::kDelete, 4, 5},
      {UpdateKind::kInsert, 0, 7},
  };
  auto groups = CoalesceByTarget(batch);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].target, 5);
  ASSERT_EQ(groups[0].changes.size(), 3u);
  EXPECT_EQ(groups[0].changes[1].src, 3);
  EXPECT_EQ(groups[0].changes[2].kind, UpdateKind::kDelete);
  EXPECT_EQ(groups[1].target, 7);
  EXPECT_EQ(groups[1].changes.size(), 2u);
}

TEST(ApplyRowUpdate, SingleChangeMatchesUnitPath) {
  // The generalized path (u = e_j, v = Δrow) and the paper-literal unit
  // path (Eqs. 27-28) must produce the same ΔS.
  DynamicDiGraph g1 = TestGraph();
  DynamicDiGraph g2 = TestGraph();
  SimRankOptions options = Converged();
  la::DenseMatrix s1 = simrank::BatchMatrix(g1, options);
  la::DenseMatrix s2 = s1;
  la::DynamicRowMatrix q1 = graph::BuildTransition(g1);
  la::DynamicRowMatrix q2 = graph::BuildTransition(g2);
  IncSrEngine unit(options);
  IncSrEngine general(options);

  Rng rng(17);
  for (int round = 0; round < 6; ++round) {
    EdgeUpdate update;
    if (rng.NextBernoulli(0.5) && g1.num_edges() > 0) {
      auto del = graph::SampleDeletions(g1, 1, &rng);
      ASSERT_TRUE(del.ok());
      update = del.value()[0];
    } else {
      auto ins = graph::SampleInsertions(g1, 1, &rng);
      ASSERT_TRUE(ins.ok());
      update = ins.value()[0];
    }
    ASSERT_TRUE(unit.ApplyUpdate(update, &g1, &q1, &s1).ok());
    ASSERT_TRUE(general
                    .ApplyRowUpdate(update.dst, std::span(&update, 1), &g2,
                                    &q2, &s2)
                    .ok());
    EXPECT_LT(la::MaxAbsDiff(s1, s2), 1e-11) << graph::ToString(update);
    EXPECT_EQ(g1.Edges(), g2.Edges());
  }
}

TEST(ApplyRowUpdate, MultiInsertGroupMatchesBatchTruth) {
  DynamicDiGraph g = TestGraph(9);
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  IncSrEngine engine(options);

  // Three new in-edges for node 4 in one solve.
  std::vector<EdgeUpdate> changes;
  for (graph::NodeId src : {0, 7, 11}) {
    if (!g.HasEdge(src, 4)) changes.push_back({UpdateKind::kInsert, src, 4});
  }
  ASSERT_GE(changes.size(), 2u);
  ASSERT_TRUE(engine
                  .ApplyRowUpdate(4, std::span(changes.data(), changes.size()),
                                  &g, &q, &s)
                  .ok());
  EXPECT_LT(la::MaxAbsDiff(s, simrank::BatchMatrix(g, options)), 1e-9);
}

TEST(ApplyRowUpdate, MixedGroupIncludingNetZero) {
  DynamicDiGraph g = TestGraph(13);
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  IncSrEngine engine(options);

  // Insert (then delete) the same edge plus one real change: the engine
  // must see through the net-zero pair.
  Rng rng(5);
  auto ins = graph::SampleInsertions(g, 2, &rng);
  ASSERT_TRUE(ins.ok());
  graph::NodeId target = ins->at(0).dst;
  std::vector<EdgeUpdate> changes = {
      {UpdateKind::kInsert, ins->at(0).src, target},
      {UpdateKind::kDelete, ins->at(0).src, target},
  };
  // Plus a real deletion on the same target if one exists.
  auto in = g.InNeighbors(target);
  if (!in.empty()) {
    changes.push_back({UpdateKind::kDelete, in[0], target});
  }
  ASSERT_TRUE(engine
                  .ApplyRowUpdate(target,
                                  std::span(changes.data(), changes.size()),
                                  &g, &q, &s)
                  .ok());
  EXPECT_LT(la::MaxAbsDiff(s, simrank::BatchMatrix(g, options)), 1e-9);
}

TEST(ApplyRowUpdate, ValidationLeavesStateUntouched) {
  DynamicDiGraph g = TestGraph(21);
  SimRankOptions options = Converged();
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DenseMatrix s_before = s;
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  DynamicDiGraph g_before = g;
  IncSrEngine engine(options);

  // Wrong target.
  EdgeUpdate wrong{UpdateKind::kInsert, 0, 3};
  EXPECT_EQ(engine.ApplyRowUpdate(5, std::span(&wrong, 1), &g, &q, &s).code(),
            StatusCode::kInvalidArgument);
  // Duplicate insert inside the group.
  auto in = g.InNeighbors(3);
  if (!in.empty()) {
    EdgeUpdate dup{UpdateKind::kInsert, in[0], 3};
    EXPECT_EQ(engine.ApplyRowUpdate(3, std::span(&dup, 1), &g, &q, &s).code(),
              StatusCode::kAlreadyExists);
  }
  // Absent delete.
  EdgeUpdate absent{UpdateKind::kDelete, 0, 0};
  if (!g.HasEdge(0, 0)) {
    EXPECT_EQ(
        engine.ApplyRowUpdate(0, std::span(&absent, 1), &g, &q, &s).code(),
        StatusCode::kNotFound);
  }
  // Out-of-range nodes.
  EdgeUpdate oob{UpdateKind::kInsert, 99, 3};
  EXPECT_EQ(engine.ApplyRowUpdate(3, std::span(&oob, 1), &g, &q, &s).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.ApplyRowUpdate(99, {}, &g, &q, &s).code(),
            StatusCode::kOutOfRange);

  EXPECT_EQ(g.Edges(), g_before.Edges());
  EXPECT_EQ(la::MaxAbsDiff(s, s_before), 0.0);
}

TEST(CoalescedBatchEngine, WholeBatchMatchesSequentialAndTruth) {
  DynamicDiGraph g_coalesced = TestGraph(31, 24, 70);
  DynamicDiGraph g_sequential = TestGraph(31, 24, 70);
  SimRankOptions options = Converged();
  la::DenseMatrix s_coalesced = simrank::BatchMatrix(g_coalesced, options);
  la::DenseMatrix s_sequential = s_coalesced;
  la::DynamicRowMatrix q_coalesced = graph::BuildTransition(g_coalesced);
  la::DynamicRowMatrix q_sequential = graph::BuildTransition(g_sequential);

  // A batch clustered on few targets: a "new paper cites many references"
  // pattern plus some deletions.
  Rng rng(41);
  std::vector<EdgeUpdate> batch;
  for (graph::NodeId src : {1, 3, 5, 7, 9}) {
    if (!g_coalesced.HasEdge(src, 20)) {
      batch.push_back({UpdateKind::kInsert, src, 20});
    }
  }
  for (graph::NodeId src : {2, 4, 6}) {
    if (!g_coalesced.HasEdge(src, 21)) {
      batch.push_back({UpdateKind::kInsert, src, 21});
    }
  }
  auto deletions = graph::SampleDeletions(g_coalesced, 3, &rng);
  ASSERT_TRUE(deletions.ok());
  for (const auto& d : deletions.value()) batch.push_back(d);

  CoalescedBatchEngine coalesced(options);
  ASSERT_TRUE(coalesced
                  .ApplyBatch(batch, &g_coalesced, &q_coalesced, &s_coalesced)
                  .ok());
  // Fewer rank-one solves than unit updates.
  EXPECT_LT(coalesced.last_group_count(), batch.size());

  IncSrEngine sequential(options);
  for (const auto& update : batch) {
    ASSERT_TRUE(
        sequential.ApplyUpdate(update, &g_sequential, &q_sequential,
                               &s_sequential)
            .ok());
  }
  EXPECT_EQ(g_coalesced.Edges(), g_sequential.Edges());
  EXPECT_LT(la::MaxAbsDiff(s_coalesced, s_sequential), 1e-9);
  EXPECT_LT(
      la::MaxAbsDiff(s_coalesced, simrank::BatchMatrix(g_coalesced, options)),
      1e-9);
}

TEST(DynamicSimRank, ApplyBatchMatchesCoalescedOnMixedRevisitingStream) {
  // A mixed insert/delete stream that REVISITS the same target node —
  // including an insert later deleted inside the same batch — must leave
  // ApplyBatch and ApplyBatchCoalesced in identical states (and both equal
  // to batch recomputation on the final graph).
  DynamicDiGraph g = TestGraph(61, 20, 60);
  SimRankOptions options = Converged();

  graph::NodeId target = -1;
  for (graph::NodeId node = 0;
       node < static_cast<graph::NodeId>(g.num_nodes()); ++node) {
    if (g.InDegree(node) >= 1) {
      target = node;
      break;
    }
  }
  ASSERT_GE(target, 0);
  auto in = g.InNeighbors(target);
  ASSERT_FALSE(in.empty());
  std::vector<EdgeUpdate> stream;
  graph::NodeId fresh_src = -1;
  for (graph::NodeId src = 0; src < static_cast<graph::NodeId>(g.num_nodes());
       ++src) {
    if (src != target && !g.HasEdge(src, target)) {
      fresh_src = src;
      break;
    }
  }
  ASSERT_GE(fresh_src, 0);
  stream.push_back({UpdateKind::kInsert, fresh_src, target});  // new in-edge
  // Interleave work on another target so the stream truly revisits.
  graph::NodeId other = 9;
  if (other == target) other = 10;
  if (!g.HasEdge(1, other) && 1 != other) {
    stream.push_back({UpdateKind::kInsert, 1, other});
  }
  stream.push_back({UpdateKind::kDelete, in[0], target});      // old in-edge
  stream.push_back({UpdateKind::kDelete, fresh_src, target});  // net zero
  Rng rng(77);
  auto extra = graph::SampleInsertions(g, 2, &rng);
  ASSERT_TRUE(extra.ok());
  for (const EdgeUpdate& u : extra.value()) {
    const bool dup_fresh = u.src == fresh_src && u.dst == target;
    const bool dup_other = u.src == 1 && u.dst == other;
    if (!dup_fresh && !dup_other) stream.push_back(u);
  }

  auto unit = DynamicSimRank::Create(g, options);
  auto coalesced = DynamicSimRank::Create(g, options);
  ASSERT_TRUE(unit.ok() && coalesced.ok());
  ASSERT_TRUE(unit->ApplyBatch(stream).ok());
  ASSERT_TRUE(coalesced->ApplyBatchCoalesced(stream).ok());

  EXPECT_EQ(unit->graph().Edges(), coalesced->graph().Edges());
  EXPECT_LT(la::MaxAbsDiff(unit->scores(), coalesced->scores()), 1e-9);
  EXPECT_LT(la::MaxAbsDiff(coalesced->scores(),
                           simrank::BatchMatrix(coalesced->graph(), options)),
            1e-9);

  // Both batch paths report merged affected-area stats with the touched
  // node union the serving layer invalidates its query cache from.
  EXPECT_FALSE(unit->last_batch_stats().touched_nodes.empty());
  EXPECT_FALSE(coalesced->last_batch_stats().touched_nodes.empty());
  for (std::int32_t node : coalesced->last_batch_stats().touched_nodes) {
    EXPECT_TRUE(coalesced->graph().HasNode(node));
  }
}

TEST(CoalescedBatchEngine, StatsAccumulateAcrossGroups) {
  DynamicDiGraph g = TestGraph(51);
  SimRankOptions options;
  options.iterations = 8;
  la::DenseMatrix s = simrank::BatchMatrix(g, options);
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  CoalescedBatchEngine engine(options);
  Rng rng(7);
  auto ins = graph::SampleInsertions(g, 4, &rng);
  ASSERT_TRUE(ins.ok());
  ASSERT_TRUE(engine.ApplyBatch(ins.value(), &g, &q, &s).ok());
  EXPECT_GE(engine.last_group_count(), 1u);
  EXPECT_EQ(engine.last_stats().a_sizes.size(),
            engine.last_group_count() *
                (static_cast<std::size_t>(options.iterations) + 1));
}

}  // namespace
}  // namespace incsr::core
