// Protocol-hardening tests for the binary wire format (src/net/wire.*):
// every message type round-trips encode → decode bit-exactly, and every
// malformed input — truncated frames, oversized length prefixes, unknown
// tags, wrong versions, inflated element counts, trailing garbage, and
// plain random bytes — yields a clean error (false / non-OK Status),
// never a crash, over-read, hang, or unbounded allocation. CI runs this
// under ASan/UBSan, which is what turns "no over-read" into a checked
// property rather than a hope.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "graph/update_stream.h"
#include "net/wire.h"
#include "obs/histogram.h"

namespace incsr::net::wire {
namespace {

using core::ScoredPair;
using graph::EdgeUpdate;
using graph::UpdateKind;

// Encodes a body, frames it, re-parses the frame, and decodes it back,
// checking the tag survives. Returns the decoded message.
template <typename Message>
Message FrameRoundTrip(MessageTag tag, const Message& in) {
  std::string body;
  in.EncodeBody(&body);
  const std::string frame = EncodeFrame(tag, body);

  std::uint8_t prefix[4];
  EXPECT_GE(frame.size(), kFramePrefixBytes);
  std::memcpy(prefix, frame.data(), kFramePrefixBytes);
  auto payload_len = ParseFrameLength(prefix, kMaxFramePayload);
  EXPECT_TRUE(payload_len.ok()) << payload_len.status().ToString();
  EXPECT_EQ(*payload_len, frame.size() - kFramePrefixBytes);

  auto parsed = ParseFramePayload(
      std::string_view(frame).substr(kFramePrefixBytes));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tag, tag);

  Message out;
  EXPECT_TRUE(Message::DecodeBody(parsed->body, &out));
  return out;
}

// Every strict prefix of a valid body must fail decode — the Reader's
// latched-failure design makes truncation at ANY byte boundary clean.
template <typename Message>
void ExpectAllTruncationsFail(const Message& in) {
  std::string body;
  in.EncodeBody(&body);
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    Message out;
    EXPECT_FALSE(
        Message::DecodeBody(std::string_view(body.data(), cut), &out))
        << "decode accepted a body truncated to " << cut << " of "
        << body.size() << " bytes";
  }
  // And a byte of trailing garbage must fail too (Complete() contract).
  std::string padded = body + '\x5a';
  Message out;
  EXPECT_FALSE(Message::DecodeBody(padded, &out));
}

TEST(WireRoundTrip, SubmitRequest) {
  SubmitRequest in;
  in.updates = {{UpdateKind::kInsert, 3, 7},
                {UpdateKind::kDelete, 0, 12},
                {UpdateKind::kInsert, 1, 1}};
  SubmitRequest out = FrameRoundTrip(MessageTag::kSubmitRequest, in);
  EXPECT_EQ(out.updates, in.updates);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, SubmitRequestEmptyBatch) {
  SubmitRequest in;  // zero updates is a valid (no-op) batch
  SubmitRequest out = FrameRoundTrip(MessageTag::kSubmitRequest, in);
  EXPECT_TRUE(out.updates.empty());
}

TEST(WireRoundTrip, SubmitResponse) {
  SubmitResponse in;
  in.status = RpcStatus::kOverloaded;
  in.accepted = 40;
  in.rejected = 24;
  SubmitResponse out = FrameRoundTrip(MessageTag::kSubmitResponse, in);
  EXPECT_EQ(out.status, RpcStatus::kOverloaded);
  EXPECT_EQ(out.accepted, 40u);
  EXPECT_EQ(out.rejected, 24u);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, ScoreRequest) {
  ScoreRequest in;
  in.a = 5;
  in.b = 11;
  ScoreRequest out = FrameRoundTrip(MessageTag::kScoreRequest, in);
  EXPECT_EQ(out.a, 5);
  EXPECT_EQ(out.b, 11);
  ExpectAllTruncationsFail(in);
}

// Doubles cross the wire as raw IEEE-754 bits: denormals, negative zero,
// and NaN payloads all survive bitwise — the property the loopback
// bitwise-identity tests build on.
TEST(WireRoundTrip, ScoreResponseIsBitwise) {
  for (double value :
       {0.6, -0.0, std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::infinity(),
        std::bit_cast<double>(std::uint64_t{0x7ff80000deadbeefULL})}) {
    ScoreResponse in;
    in.score = value;
    ScoreResponse out = FrameRoundTrip(MessageTag::kScoreResponse, in);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.score),
              std::bit_cast<std::uint64_t>(value));
  }
  ExpectAllTruncationsFail(ScoreResponse{});
}

TEST(WireRoundTrip, TopKForRequest) {
  TopKForRequest in;
  in.node = 9;
  in.k = 25;
  TopKForRequest out = FrameRoundTrip(MessageTag::kTopKForRequest, in);
  EXPECT_EQ(out.node, 9);
  EXPECT_EQ(out.k, 25u);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, TopKPairsRequest) {
  TopKPairsRequest in;
  in.k = 100;
  TopKPairsRequest out = FrameRoundTrip(MessageTag::kTopKPairsRequest, in);
  EXPECT_EQ(out.k, 100u);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, TopKResponse) {
  TopKResponse in;
  in.entries = {{0, 4, 0.75}, {0, 2, 0.25}, {0, 9, 0.25}};
  TopKResponse out = FrameRoundTrip(MessageTag::kTopKResponse, in);
  EXPECT_EQ(out.entries, in.entries);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, SuggestRequest) {
  SuggestRequest in;
  in.k = 5;
  in.nodes = {1, 4, 4, 0};
  SuggestRequest out = FrameRoundTrip(MessageTag::kSuggestRequest, in);
  EXPECT_EQ(out.k, 5u);
  EXPECT_EQ(out.nodes, in.nodes);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, SuggestResponse) {
  SuggestResponse in;
  in.status = RpcStatus::kInvalid;
  in.suggestions.push_back({3, true, {{3, 1, 0.5}, {3, 0, 0.25}}});
  in.suggestions.push_back({99, false, {}});
  SuggestResponse out = FrameRoundTrip(MessageTag::kSuggestResponse, in);
  EXPECT_EQ(out.status, RpcStatus::kInvalid);
  ASSERT_EQ(out.suggestions.size(), 2u);
  EXPECT_EQ(out.suggestions[0].node, 3);
  EXPECT_TRUE(out.suggestions[0].found);
  EXPECT_EQ(out.suggestions[0].entries, in.suggestions[0].entries);
  EXPECT_EQ(out.suggestions[1].node, 99);
  EXPECT_FALSE(out.suggestions[1].found);
  EXPECT_TRUE(out.suggestions[1].entries.empty());
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, StatsResponse) {
  StatsResponse in;
  in.stats.epoch = 17;
  in.stats.submitted = 400;
  in.stats.applied = 390;
  in.stats.rejected = 6;
  in.stats.failed = 4;
  in.stats.batches = 17;
  in.stats.queue_depth = 3;
  in.stats.rows_published = 1234;
  in.stats.bytes_published = 9876;
  in.stats.topk_index_served = 55;
  in.stats.topk_index_fallbacks = 5;
  in.stats.topk_index_rows_reranked = 600;
  in.stats.cache.hits = 10;
  in.stats.cache.misses = 20;
  in.stats.cache.invalidations = 30;
  in.stats.cache.evictions = 40;
  in.stats.cache.stale_inserts = 50;
  in.num_nodes = 1000;
  in.num_edges = 5000;
  in.is_replica = true;
  in.stats.rows_sparse = 700;
  in.stats.rows_dense = 300;
  in.stats.bytes_saved = 123456;
  in.stats.sparse_eps_drops = 42;
  in.stats.sparse_max_error_bound = 1.25e-4;
  in.stats.tier_demotions = 12;
  in.stats.tier_promotions = 7;
  in.stats.graph_bytes_copied = 2048;
  in.stats.topk_cap_grows = 3;
  in.stats.topk_cap_shrinks = 2;
  in.stats.rows_spilled_dense = 9;
  in.stats.sparse_write_merges = 811;
  // v4 latency histograms, populated through the real recorder so the
  // encoded snapshots carry the count == Σ buckets invariant the sparse
  // decoder reconstructs.
  {
    obs::Histogram queue_wait;
    for (std::uint64_t v : {0ull, 800ull, 1500ull, 1500ull, 1ull << 20}) {
      queue_wait.Record(v);
    }
    in.stats.queue_wait_ns = queue_wait.snapshot();
    obs::Histogram apply;
    for (std::uint64_t v : {250'000ull, 900'000ull, 12'000'000ull}) {
      apply.Record(v);
    }
    in.stats.apply_ns = apply.snapshot();
  }
  StatsResponse out = FrameRoundTrip(MessageTag::kStatsResponse, in);
  EXPECT_EQ(out.stats.epoch, 17u);
  EXPECT_EQ(out.stats.submitted, 400u);
  EXPECT_EQ(out.stats.applied, 390u);
  EXPECT_EQ(out.stats.rejected, 6u);
  EXPECT_EQ(out.stats.failed, 4u);
  EXPECT_EQ(out.stats.batches, 17u);
  EXPECT_EQ(out.stats.queue_depth, 3u);
  EXPECT_EQ(out.stats.rows_published, 1234u);
  EXPECT_EQ(out.stats.bytes_published, 9876u);
  EXPECT_EQ(out.stats.topk_index_served, 55u);
  EXPECT_EQ(out.stats.topk_index_fallbacks, 5u);
  EXPECT_EQ(out.stats.topk_index_rows_reranked, 600u);
  EXPECT_EQ(out.stats.cache.hits, 10u);
  EXPECT_EQ(out.stats.cache.misses, 20u);
  EXPECT_EQ(out.stats.cache.invalidations, 30u);
  EXPECT_EQ(out.stats.cache.evictions, 40u);
  EXPECT_EQ(out.stats.cache.stale_inserts, 50u);
  EXPECT_EQ(out.num_nodes, 1000u);
  EXPECT_EQ(out.num_edges, 5000u);
  EXPECT_TRUE(out.is_replica);
  EXPECT_EQ(out.stats.rows_sparse, 700u);
  EXPECT_EQ(out.stats.rows_dense, 300u);
  EXPECT_EQ(out.stats.bytes_saved, 123456u);
  EXPECT_EQ(out.stats.sparse_eps_drops, 42u);
  EXPECT_EQ(out.stats.sparse_max_error_bound, 1.25e-4);
  EXPECT_EQ(out.stats.tier_demotions, 12u);
  EXPECT_EQ(out.stats.tier_promotions, 7u);
  EXPECT_EQ(out.stats.graph_bytes_copied, 2048u);
  EXPECT_EQ(out.stats.topk_cap_grows, 3u);
  EXPECT_EQ(out.stats.topk_cap_shrinks, 2u);
  EXPECT_EQ(out.stats.rows_spilled_dense, 9u);
  EXPECT_EQ(out.stats.sparse_write_merges, 811u);
  EXPECT_EQ(out.stats.queue_wait_ns.count, 5u);
  EXPECT_EQ(out.stats.queue_wait_ns.sum, in.stats.queue_wait_ns.sum);
  EXPECT_EQ(out.stats.queue_wait_ns.min, 0u);
  EXPECT_EQ(out.stats.queue_wait_ns.max, 1u << 20);
  EXPECT_EQ(out.stats.queue_wait_ns.buckets, in.stats.queue_wait_ns.buckets);
  EXPECT_EQ(out.stats.apply_ns.count, 3u);
  EXPECT_EQ(out.stats.apply_ns.buckets, in.stats.apply_ns.buckets);
  // Percentiles computed from the decoded snapshot match the source's —
  // the histogram travels losslessly, not as pre-baked quantiles.
  EXPECT_EQ(out.stats.apply_ns.Percentile(0.99),
            in.stats.apply_ns.Percentile(0.99));
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, StatsResponseEmptyHistogramsStayEmpty) {
  StatsResponse in;  // default: both histograms empty
  StatsResponse out = FrameRoundTrip(MessageTag::kStatsResponse, in);
  EXPECT_TRUE(out.stats.queue_wait_ns.empty());
  EXPECT_TRUE(out.stats.apply_ns.empty());
  ExpectAllTruncationsFail(in);
}

TEST(WireHostileInput, StatsHistogramRejectsMalformedBucketLists) {
  StatsResponse in;
  obs::Histogram hist;
  hist.Record(100);
  hist.Record(7'000);
  hist.Record(7'000);
  in.stats.queue_wait_ns = hist.snapshot();
  std::string body;
  in.EncodeBody(&body);
  {
    StatsResponse out;
    ASSERT_TRUE(StatsResponse::DecodeBody(body, &out));  // baseline sane
  }
  // The queue_wait histogram tail: sum/min/max (24 B) + nonzero (4 B) +
  // two (u8, u64) pairs; apply_ns (empty) follows as 28 B of zeros, then
  // the v5 write-path counters (2 × u64) close the body.
  const std::size_t v5_tail = 8 * 2;
  const std::size_t apply_bytes = 8 * 3 + 4;
  const std::size_t pairs_at = body.size() - v5_tail - apply_bytes - 2 * 9;
  const std::size_t nonzero_at = pairs_at - 4;

  // Bucket count claiming more buckets than exist: rejected (and the
  // Reader's bounds check keeps the pair loop from over-reading).
  std::string inflated = body;
  inflated[nonzero_at] = '\x09';
  StatsResponse out;
  EXPECT_FALSE(StatsResponse::DecodeBody(inflated, &out));

  // Non-increasing bucket indices: rejected (canonical encodings only).
  std::string reordered = body;
  std::swap(reordered[pairs_at], reordered[pairs_at + 9]);
  EXPECT_FALSE(StatsResponse::DecodeBody(reordered, &out));

  // A listed bucket with a zero count: rejected.
  std::string zeroed = body;
  for (std::size_t i = 0; i < 8; ++i) zeroed[pairs_at + 1 + i] = '\0';
  EXPECT_FALSE(StatsResponse::DecodeBody(zeroed, &out));
}

TEST(WireRoundTrip, FlushResponse) {
  FlushResponse in;
  in.status = RpcStatus::kShuttingDown;
  FlushResponse out = FrameRoundTrip(MessageTag::kFlushResponse, in);
  EXPECT_EQ(out.status, RpcStatus::kShuttingDown);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, SubscribeRequest) {
  SubscribeRequest in;
  in.from_seq = 0xDEADBEEFCAFEF00DULL;
  SubscribeRequest out = FrameRoundTrip(MessageTag::kSubscribeRequest, in);
  EXPECT_EQ(out.from_seq, in.from_seq);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, SubscribeResponse) {
  SubscribeResponse in;
  in.status = RpcStatus::kOk;
  in.next_seq = 42;
  SubscribeResponse out = FrameRoundTrip(MessageTag::kSubscribeResponse, in);
  EXPECT_EQ(out.next_seq, 42u);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, ReplicaBatchMessage) {
  ReplicaBatchMessage in;
  in.seq = 7;
  in.updates = {{UpdateKind::kDelete, 2, 3}, {UpdateKind::kInsert, 3, 2}};
  ReplicaBatchMessage out = FrameRoundTrip(MessageTag::kReplicaBatch, in);
  EXPECT_EQ(out.seq, 7u);
  EXPECT_EQ(out.updates, in.updates);
  ExpectAllTruncationsFail(in);
}

TEST(WireRoundTrip, ErrorResponse) {
  ErrorResponse in;
  in.status = RpcStatus::kInternal;
  in.message = "something on fire";
  ErrorResponse out = FrameRoundTrip(MessageTag::kErrorResponse, in);
  EXPECT_EQ(out.status, RpcStatus::kInternal);
  EXPECT_EQ(out.message, "something on fire");
  ExpectAllTruncationsFail(in);
}

// ---- Frame-level malformations --------------------------------------------

std::uint8_t PrefixByte(std::uint32_t len, int i) {
  return static_cast<std::uint8_t>((len >> (8 * i)) & 0xFF);
}

TEST(WireFraming, LengthPrefixRejectsTooShortAndTooLong) {
  for (std::uint32_t len : {0u, 1u}) {  // < version + tag
    std::uint8_t prefix[4] = {PrefixByte(len, 0), PrefixByte(len, 1),
                              PrefixByte(len, 2), PrefixByte(len, 3)};
    EXPECT_FALSE(ParseFrameLength(prefix, kMaxFramePayload).ok());
  }
  // An attacker announcing a 4 GiB frame must be rejected BEFORE any
  // allocation of that size; the cap is the guard.
  for (std::uint32_t len :
       {static_cast<std::uint32_t>(kMaxFramePayload) + 1, 0xFFFFFFFFu}) {
    std::uint8_t prefix[4] = {PrefixByte(len, 0), PrefixByte(len, 1),
                              PrefixByte(len, 2), PrefixByte(len, 3)};
    EXPECT_FALSE(ParseFrameLength(prefix, kMaxFramePayload).ok());
  }
  // Boundary: exactly the cap is accepted.
  const auto cap = static_cast<std::uint32_t>(kMaxFramePayload);
  std::uint8_t prefix[4] = {PrefixByte(cap, 0), PrefixByte(cap, 1),
                            PrefixByte(cap, 2), PrefixByte(cap, 3)};
  auto at_cap = ParseFrameLength(prefix, kMaxFramePayload);
  ASSERT_TRUE(at_cap.ok());
  EXPECT_EQ(*at_cap, kMaxFramePayload);
}

TEST(WireFraming, PayloadRejectsBadVersionAndUnknownTag) {
  // Wrong version, valid tag.
  std::string bad_version;
  bad_version.push_back(static_cast<char>(kWireVersion + 1));
  bad_version.push_back(
      static_cast<char>(MessageTag::kPingRequest));
  EXPECT_FALSE(ParseFramePayload(bad_version).ok());

  // Right version, unknown tag.
  std::string bad_tag;
  bad_tag.push_back(static_cast<char>(kWireVersion));
  bad_tag.push_back('\x42');
  EXPECT_FALSE(IsKnownTag(0x42));
  EXPECT_FALSE(ParseFramePayload(bad_tag).ok());

  // Too short for version + tag.
  EXPECT_FALSE(ParseFramePayload("").ok());
  EXPECT_FALSE(ParseFramePayload(std::string(1, kWireVersion)).ok());
}

TEST(WireFraming, EveryDeclaredTagIsKnown) {
  for (MessageTag tag :
       {MessageTag::kPingRequest, MessageTag::kSubmitRequest,
        MessageTag::kScoreRequest, MessageTag::kTopKForRequest,
        MessageTag::kTopKPairsRequest, MessageTag::kSuggestRequest,
        MessageTag::kStatsRequest, MessageTag::kFlushRequest,
        MessageTag::kSubscribeRequest, MessageTag::kPingResponse,
        MessageTag::kSubmitResponse, MessageTag::kScoreResponse,
        MessageTag::kTopKResponse, MessageTag::kSuggestResponse,
        MessageTag::kStatsResponse, MessageTag::kFlushResponse,
        MessageTag::kSubscribeResponse, MessageTag::kReplicaBatch,
        MessageTag::kErrorResponse}) {
    EXPECT_TRUE(IsKnownTag(static_cast<std::uint8_t>(tag)))
        << MessageTagName(tag);
  }
}

// ---- Hostile bodies --------------------------------------------------------

// An element count far larger than the bytes behind it must fail without
// reserving count-sized memory (the decoder checks count against
// Remaining() first). ASan would flag the over-read; the wall clock would
// flag a 4-billion-element reserve.
TEST(WireHostileInput, InflatedCountsAreRejectedWithoutAllocation) {
  std::string body;
  Writer writer(&body);
  writer.U32(0xFFFFFFFFu);  // "4 billion updates follow"
  writer.U8(0);             // ...but only one byte does
  SubmitRequest submit;
  EXPECT_FALSE(SubmitRequest::DecodeBody(body, &submit));
  EXPECT_TRUE(submit.updates.empty());

  TopKResponse topk;
  EXPECT_FALSE(TopKResponse::DecodeBody(body, &topk));
  EXPECT_TRUE(topk.entries.empty());

  // Nested inflated count: valid outer list, hostile inner list.
  SuggestResponse suggest;
  std::string nested;
  Writer nested_writer(&nested);
  nested_writer.U8(0);           // status kOk
  nested_writer.U32(1);          // one suggestion
  nested_writer.I32(3);          // node
  nested_writer.U8(1);           // found
  nested_writer.U32(0xFFFFFFu);  // 16M entries announced, none present
  EXPECT_FALSE(SuggestResponse::DecodeBody(nested, &suggest));

  // String length beyond the remaining bytes.
  std::string str_body;
  Writer str_writer(&str_body);
  str_writer.U8(2);            // status kInvalid
  str_writer.U32(0x10000000u); // 256 MB of message text announced
  ErrorResponse error;
  EXPECT_FALSE(ErrorResponse::DecodeBody(str_body, &error));
}

// Unknown enum values inside otherwise well-formed bodies.
TEST(WireHostileInput, UnknownEnumValuesAreRejected) {
  // RpcStatus byte out of range.
  std::string body;
  Writer writer(&body);
  writer.U8(250);
  writer.U32(0);
  writer.U32(0);
  SubmitResponse submit;
  EXPECT_FALSE(SubmitResponse::DecodeBody(body, &submit));

  // UpdateKind byte out of range.
  std::string updates_body;
  Writer updates_writer(&updates_body);
  updates_writer.U32(1);
  updates_writer.U8(7);  // not kInsert/kDelete
  updates_writer.I32(0);
  updates_writer.I32(1);
  SubmitRequest request;
  EXPECT_FALSE(SubmitRequest::DecodeBody(updates_body, &request));
}

// Deterministic garbage through every decoder: whatever the bytes, the
// decoders must return false or true cleanly — never crash, over-read
// (ASan), or hang. Runs a few hundred bodies of varying length.
TEST(WireHostileInput, RandomGarbageNeverCrashesAnyDecoder) {
  Rng rng(20140406);  // arbitrary fixed seed: failures must reproduce
  for (int round = 0; round < 300; ++round) {
    const std::size_t size = rng.NextBounded(160);
    std::string garbage(size, '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(rng.NextBounded(256));
    }
    SubmitRequest m1;
    SubmitRequest::DecodeBody(garbage, &m1);
    SubmitResponse m2;
    SubmitResponse::DecodeBody(garbage, &m2);
    ScoreRequest m3;
    ScoreRequest::DecodeBody(garbage, &m3);
    ScoreResponse m4;
    ScoreResponse::DecodeBody(garbage, &m4);
    TopKForRequest m5;
    TopKForRequest::DecodeBody(garbage, &m5);
    TopKPairsRequest m6;
    TopKPairsRequest::DecodeBody(garbage, &m6);
    TopKResponse m7;
    TopKResponse::DecodeBody(garbage, &m7);
    SuggestRequest m8;
    SuggestRequest::DecodeBody(garbage, &m8);
    SuggestResponse m9;
    SuggestResponse::DecodeBody(garbage, &m9);
    StatsResponse m10;
    StatsResponse::DecodeBody(garbage, &m10);
    FlushResponse m11;
    FlushResponse::DecodeBody(garbage, &m11);
    SubscribeRequest m12;
    SubscribeRequest::DecodeBody(garbage, &m12);
    SubscribeResponse m13;
    SubscribeResponse::DecodeBody(garbage, &m13);
    ReplicaBatchMessage m14;
    ReplicaBatchMessage::DecodeBody(garbage, &m14);
    ErrorResponse m15;
    ErrorResponse::DecodeBody(garbage, &m15);
    // Frame layer too: a random prefix either parses in-range or errors.
    if (size >= 4) {
      std::uint8_t prefix[4];
      std::memcpy(prefix, garbage.data(), 4);
      auto len = ParseFrameLength(prefix, kMaxFramePayload);
      if (len.ok()) {
        EXPECT_GE(*len, kMinFramePayload);
        EXPECT_LE(*len, kMaxFramePayload);
      }
      ParseFramePayload(garbage);
    }
  }
}

// ---- Status mapping --------------------------------------------------------

TEST(WireStatus, ServiceStatusMapsOntoWireStatus) {
  EXPECT_EQ(ToRpcStatus(Status::OK()), RpcStatus::kOk);
  EXPECT_EQ(ToRpcStatus(Status::ResourceExhausted("queue full")),
            RpcStatus::kOverloaded);
  EXPECT_EQ(ToRpcStatus(Status::NotSupported("replica")),
            RpcStatus::kNotSupported);
  EXPECT_EQ(ToRpcStatus(Status::FailedPrecondition("stopping")),
            RpcStatus::kShuttingDown);
  EXPECT_EQ(ToRpcStatus(Status::InvalidArgument("bad k")),
            RpcStatus::kInvalid);

  EXPECT_TRUE(FromRpcStatus(RpcStatus::kOk, "ctx").ok());
  EXPECT_EQ(FromRpcStatus(RpcStatus::kOverloaded, "ctx").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FromRpcStatus(RpcStatus::kNotSupported, "ctx").code(),
            StatusCode::kNotSupported);
  EXPECT_FALSE(FromRpcStatus(RpcStatus::kInternal, "ctx").ok());
}

}  // namespace
}  // namespace incsr::net::wire
