// Concurrent-region scheduler tests: the work-stealing guarantees the
// single-region ThreadPool could not make. K independent submitters on
// one Scheduler must (a) each see their range covered exactly once,
// (b) all run PARALLEL — the regions_inline_busy counter stays zero in
// work-stealing mode whenever workers exist (the contention regression
// signal; only the legacy exclusive mode may bump it), and (c) leave
// every kernel bitwise deterministic: K appliers driving IncSR streams
// concurrently through the shared Global() scheduler produce S matrices
// and epoch-view sequences byte-identical to a serial replay, at every
// thread count. The suite runs in the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/scheduler.h"
#include "core/inc_sr.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "graph/update_stream.h"
#include "la/dense_matrix.h"
#include "la/score_store.h"
#include "simrank/batch_matrix.h"

namespace incsr {
namespace {

// ---- Concurrent regions share the worker set ------------------------------

TEST(SchedulerConcurrent, ConcurrentRegionsCoverRangesAndStayParallel) {
  Scheduler scheduler(4);
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kRegionsEach = 8;
  constexpr std::size_t kCount = 513;
  const SchedulerStats before = scheduler.stats();

  std::vector<std::vector<std::atomic<int>>> hits(kSubmitters);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kCount);
  }
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&scheduler, &hits, s] {
      Scheduler::BindCurrentThreadToGroup(static_cast<int>(s));
      for (std::size_t r = 0; r < kRegionsEach; ++r) {
        scheduler.ParallelForChunks(
            0, kCount, /*num_chunks=*/8, /*max_threads=*/4,
            [&hits, s](std::size_t, std::size_t lo, std::size_t hi) {
              for (std::size_t k = lo; k < hi; ++k) {
                hits[s][k].fetch_add(1, std::memory_order_relaxed);
              }
            });
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  for (std::size_t s = 0; s < kSubmitters; ++s) {
    for (std::size_t k = 0; k < kCount; ++k) {
      ASSERT_EQ(hits[s][k].load(), static_cast<int>(kRegionsEach))
          << "submitter " << s << " index " << k;
    }
  }
  const SchedulerStats after = scheduler.stats();
  // Every region ran on the worker set — the old pool would have
  // degraded all but one concurrent submitter to inline-serial.
  EXPECT_EQ(after.regions_parallel - before.regions_parallel,
            kSubmitters * kRegionsEach);
  EXPECT_EQ(after.regions_inline_busy - before.regions_inline_busy, 0u);
  EXPECT_GT(after.tickets_pushed, before.tickets_pushed);
}

TEST(SchedulerConcurrent, ExclusiveModeDegradesOverlappingRegionToInline) {
  // Deterministic replica of the legacy ThreadPool cliff: submitter A
  // holds the one region slot open (its chunk 0 spins until B is done),
  // so B's overlapping region MUST take the inline-busy path.
  Scheduler scheduler(4);
  scheduler.set_exclusive_regions(true);
  const SchedulerStats before = scheduler.stats();

  std::atomic<bool> b_done{false};
  std::atomic<int> a_sum{0};
  std::atomic<int> b_sum{0};
  std::thread a([&] {
    scheduler.ParallelForChunks(
        0, 16, /*num_chunks=*/4, /*max_threads=*/4,
        [&](std::size_t c, std::size_t lo, std::size_t hi) {
          if (c == 0) {
            while (!b_done.load(std::memory_order_acquire)) {
              std::this_thread::yield();
            }
          }
          for (std::size_t k = lo; k < hi; ++k) {
            a_sum.fetch_add(static_cast<int>(k), std::memory_order_relaxed);
          }
        });
  });
  // A's region is admitted (and the exclusive slot taken) once the
  // parallel counter moves; it cannot finish before b_done.
  while (scheduler.stats().regions_parallel == before.regions_parallel) {
    std::this_thread::yield();
  }
  std::thread b([&] {
    scheduler.ParallelForChunks(
        0, 16, /*num_chunks=*/4, /*max_threads=*/4,
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            b_sum.fetch_add(static_cast<int>(k), std::memory_order_relaxed);
          }
        });
    b_done.store(true, std::memory_order_release);
  });
  b.join();
  a.join();

  EXPECT_EQ(a_sum.load(), 120);  // 0 + 1 + ... + 15, exactly once
  EXPECT_EQ(b_sum.load(), 120);
  const SchedulerStats after = scheduler.stats();
  EXPECT_EQ(after.regions_inline_busy - before.regions_inline_busy, 1u);
  EXPECT_EQ(after.regions_parallel - before.regions_parallel, 1u);
}

TEST(SchedulerConcurrent, GroupBindingIsThreadLocal) {
  const int main_before = Scheduler::CurrentThreadGroup();
  Scheduler::BindCurrentThreadToGroup(3);
  EXPECT_EQ(Scheduler::CurrentThreadGroup(), 3);
  std::thread other([] {
    EXPECT_EQ(Scheduler::CurrentThreadGroup(), -1);  // fresh thread: unbound
    Scheduler::BindCurrentThreadToGroup(7);
    EXPECT_EQ(Scheduler::CurrentThreadGroup(), 7);
  });
  other.join();
  EXPECT_EQ(Scheduler::CurrentThreadGroup(), 3);  // unaffected by `other`
  Scheduler::BindCurrentThreadToGroup(main_before);
}

// ---- Concurrent appliers stay bitwise deterministic ------------------------

struct Fixture {
  graph::DynamicDiGraph base;
  la::DenseMatrix s0;
  std::vector<graph::EdgeUpdate> stream;
  simrank::SimRankOptions options;
};

Fixture MakeFixture(std::uint64_t seed) {
  constexpr std::size_t kNodes = 260;
  Fixture f;
  auto stream = graph::EvolvingLinkage({.num_nodes = kNodes,
                                        .num_edges = 8 * kNodes,
                                        .num_communities = kNodes / 65,
                                        .intra_community_prob = 1.0,
                                        .seed = seed});
  EXPECT_TRUE(stream.ok());
  f.base = graph::MaterializeGraph(kNodes, stream.value());
  f.options.iterations = 6;
  f.s0 = simrank::BatchMatrix(f.base, f.options);

  Rng rng(seed * 2 + 1);
  auto ins = graph::SampleInsertions(f.base, 10, &rng);
  auto del = graph::SampleDeletions(f.base, 6, &rng);
  EXPECT_TRUE(ins.ok() && del.ok());
  f.stream = *ins;
  f.stream.insert(f.stream.end(), del->begin(), del->end());
  return f;
}

struct Replay {
  la::DenseMatrix final_s;
  std::vector<la::DenseMatrix> epochs;  // published every 4 updates
};

// One applier's life: replay the fixture's stream through IncSR on a
// COW store, publishing epoch views along the way. Kernels submit to
// the shared Scheduler::Global() — concurrently with every other
// applier in the test.
Replay ReplayStream(const Fixture& f, int threads) {
  graph::DynamicDiGraph g = f.base;
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  la::ScoreStore s{la::DenseMatrix(f.s0)};
  simrank::SimRankOptions options = f.options;
  options.num_threads = threads;
  core::IncSrEngine engine(options);
  Replay replay;
  std::size_t applied = 0;
  for (const graph::EdgeUpdate& u : f.stream) {
    EXPECT_TRUE(engine.ApplyUpdate(u, &g, &q, &s).ok());
    if (++applied % 4 == 0) {
      replay.epochs.push_back(s.Publish().ToDense());
    }
  }
  replay.final_s = s.ToDense();
  return replay;
}

TEST(SchedulerConcurrent, AppliersBitwiseIdenticalAcrossThreadCounts) {
  constexpr std::size_t kAppliers = 3;
  std::vector<Fixture> fixtures;
  std::vector<Replay> serial;
  for (std::size_t i = 0; i < kAppliers; ++i) {
    fixtures.push_back(MakeFixture(29 + 14 * i));
    serial.push_back(ReplayStream(fixtures.back(), /*threads=*/1));
  }

  const SchedulerStats before = Scheduler::Global().stats();
  const std::vector<int> thread_counts = {
      1, 2, 4, static_cast<int>(Scheduler::ResolveNumThreads(0))};
  for (int threads : thread_counts) {
    std::vector<Replay> got(kAppliers);
    std::vector<std::thread> appliers;
    for (std::size_t i = 0; i < kAppliers; ++i) {
      appliers.emplace_back([&fixtures, &got, i, threads] {
        // Distinct groups, like the sharded service's appliers.
        Scheduler::BindCurrentThreadToGroup(static_cast<int>(i));
        got[i] = ReplayStream(fixtures[i], threads);
      });
    }
    for (std::thread& t : appliers) t.join();

    for (std::size_t i = 0; i < kAppliers; ++i) {
      EXPECT_TRUE(BitwiseEqual(got[i].final_s, serial[i].final_s))
          << "applier " << i << " final S diverged at " << threads
          << " threads";
      ASSERT_EQ(got[i].epochs.size(), serial[i].epochs.size());
      for (std::size_t e = 0; e < got[i].epochs.size(); ++e) {
        EXPECT_TRUE(BitwiseEqual(got[i].epochs[e], serial[i].epochs[e]))
            << "applier " << i << " epoch " << e << " diverged at "
            << threads << " threads";
      }
    }
  }
  // Work-stealing mode with free workers: no concurrent applier may
  // have been degraded to the legacy busy-inline path.
  const SchedulerStats after = Scheduler::Global().stats();
  EXPECT_EQ(after.regions_inline_busy - before.regions_inline_busy, 0u);
}

}  // namespace
}  // namespace incsr
