// Tests for the evaluation metrics: error summaries, top-k extraction,
// overlap, and NDCG@k (the Fig. 4 measure).
#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "graph/generators.h"
#include "simrank/batch_matrix.h"

namespace incsr::eval {
namespace {

la::DenseMatrix SymmetricScores() {
  // 4 nodes; off-diagonal scores: (0,1)=0.9 (0,2)=0.5 (0,3)=0.1
  // (1,2)=0.7 (1,3)=0.3 (2,3)=0.2
  la::DenseMatrix s = la::DenseMatrix::FromRows({{1.0, 0.9, 0.5, 0.1},
                                                 {0.9, 1.0, 0.7, 0.3},
                                                 {0.5, 0.7, 1.0, 0.2},
                                                 {0.1, 0.3, 0.2, 1.0}});
  return s;
}

TEST(MetricsTest, ErrorSummaries) {
  la::DenseMatrix a = SymmetricScores();
  la::DenseMatrix b = a;
  EXPECT_DOUBLE_EQ(MaxAbsError(a, b), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsError(a, b), 0.0);
  b(0, 1) += 0.2;
  b(3, 2) -= 0.1;
  EXPECT_DOUBLE_EQ(MaxAbsError(a, b), 0.2);
  EXPECT_NEAR(MeanAbsError(a, b), (0.2 + 0.1) / 16.0, 1e-15);
}

TEST(MetricsTest, TopKPairsRanksAndTruncates) {
  auto top = TopKPairs(SymmetricScores(), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].a, 0);
  EXPECT_EQ(top[0].b, 1);
  EXPECT_DOUBLE_EQ(top[0].score, 0.9);
  EXPECT_EQ(top[1].a, 1);
  EXPECT_EQ(top[1].b, 2);
  EXPECT_EQ(top[2].a, 0);
  EXPECT_EQ(top[2].b, 2);
  // k larger than the pair count returns all pairs.
  EXPECT_EQ(TopKPairs(SymmetricScores(), 100).size(), 6u);
}

TEST(MetricsTest, TopKOverlapBounds) {
  la::DenseMatrix exact = SymmetricScores();
  EXPECT_DOUBLE_EQ(TopKOverlap(exact, exact, 4), 1.0);
  // Perturb so the top pair changes.
  la::DenseMatrix approx = exact;
  approx(0, 1) = approx(1, 0) = 0.0;
  double overlap = TopKOverlap(approx, exact, 2);
  EXPECT_GE(overlap, 0.0);
  EXPECT_LT(overlap, 1.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  la::DenseMatrix exact = SymmetricScores();
  auto ndcg = NdcgAtK(exact, exact, 4);
  ASSERT_TRUE(ndcg.ok());
  EXPECT_DOUBLE_EQ(ndcg.value(), 1.0);
}

TEST(NdcgTest, ScaleInvariantRankingIsStillPerfect) {
  la::DenseMatrix exact = SymmetricScores();
  la::DenseMatrix scaled = exact;
  scaled.Scale(0.5);  // same order, different values
  auto ndcg = NdcgAtK(scaled, exact, 4);
  ASSERT_TRUE(ndcg.ok());
  EXPECT_DOUBLE_EQ(ndcg.value(), 1.0);
}

TEST(NdcgTest, DegradedRankingScoresBelowOne) {
  la::DenseMatrix exact = SymmetricScores();
  la::DenseMatrix approx = exact;
  // Invert the ranking: top pair becomes bottom.
  approx(0, 1) = approx(1, 0) = 0.01;
  approx(0, 3) = approx(3, 0) = 0.95;
  auto ndcg = NdcgAtK(approx, exact, 3);
  ASSERT_TRUE(ndcg.ok());
  EXPECT_LT(ndcg.value(), 1.0);
  EXPECT_GT(ndcg.value(), 0.0);
}

TEST(NdcgTest, MonotoneInRankingQuality) {
  la::DenseMatrix exact = SymmetricScores();
  la::DenseMatrix mild = exact;
  mild(0, 1) = mild(1, 0) = 0.65;  // drops top pair to rank 2
  la::DenseMatrix severe = exact;
  severe(0, 1) = severe(1, 0) = 0.0;  // drops top pair out of top-3
  auto ndcg_mild = NdcgAtK(mild, exact, 3);
  auto ndcg_severe = NdcgAtK(severe, exact, 3);
  ASSERT_TRUE(ndcg_mild.ok());
  ASSERT_TRUE(ndcg_severe.ok());
  EXPECT_GT(ndcg_mild.value(), ndcg_severe.value());
}

TEST(NdcgTest, Validation) {
  la::DenseMatrix a(3, 3);
  la::DenseMatrix b(4, 4);
  EXPECT_FALSE(NdcgAtK(a, b, 3).ok());
  EXPECT_FALSE(NdcgAtK(a, a, 0).ok());
  // All-zero relevance: trivially ideal.
  auto ndcg = NdcgAtK(a, a, 2);
  ASSERT_TRUE(ndcg.ok());
  EXPECT_DOUBLE_EQ(ndcg.value(), 1.0);
}

TEST(NdcgTest, EndToEndOnSimRankMatrices) {
  // Converged batch vs under-iterated batch: NDCG should be high but the
  // matrices differ; against itself it is exactly 1.
  auto stream = graph::ErdosRenyiGnm(20, 60, 3);
  ASSERT_TRUE(stream.ok());
  auto g = graph::MaterializeGraph(20, stream.value());
  simrank::SimRankOptions coarse;
  coarse.iterations = 2;
  simrank::SimRankOptions fine;
  fine.iterations = 60;
  la::DenseMatrix exact = simrank::BatchMatrix(g, fine);
  la::DenseMatrix rough = simrank::BatchMatrix(g, coarse);
  auto self_ndcg = NdcgAtK(exact, exact, 30);
  ASSERT_TRUE(self_ndcg.ok());
  EXPECT_DOUBLE_EQ(self_ndcg.value(), 1.0);
  auto rough_ndcg = NdcgAtK(rough, exact, 30);
  ASSERT_TRUE(rough_ndcg.ok());
  EXPECT_GT(rough_ndcg.value(), 0.5);
  EXPECT_LE(rough_ndcg.value(), 1.0);
}

}  // namespace
}  // namespace incsr::eval
