// Parallel update-kernel determinism and Scheduler contract tests.
//
// The kernels' promise (core/inc_sr.h): S is BITWISE identical at every
// thread count — scatter rows are disjoint with per-row serial write
// order, and the expansion kernels merge per-chunk accumulators whose
// chunk geometry depends only on the data shape. These tests drive mixed
// insert/delete streams through every UpdateAlgorithm (plus the
// coalesced batch path) on both score containers at num_threads ∈
// {1, 2, 4, hardware} and memcmp the results, including the epoch-view
// sequence a serving reader would pin. The suite runs in the TSan CI job
// to prove the pool + copy-on-write interplay is race-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/scheduler.h"
#include "core/coalesced_update.h"
#include "core/inc_sr.h"
#include "core/inc_usr.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "graph/update_stream.h"
#include "la/score_store.h"
#include "simrank/batch_matrix.h"

namespace incsr {
namespace {

// ---- Scheduler contract ---------------------------------------------------

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  Scheduler pool(4);
  constexpr std::size_t kCount = 1337;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(0, kCount, /*grain=*/16, /*max_threads=*/4,
                   [&hits](std::size_t lo, std::size_t hi) {
                     for (std::size_t k = lo; k < hi; ++k) {
                       hits[k].fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  for (std::size_t k = 0; k < kCount; ++k) {
    EXPECT_EQ(hits[k].load(), 1) << "index " << k;
  }
}

TEST(Scheduler, PlanChunksRespectsGrainAndCap) {
  EXPECT_EQ(Scheduler::PlanChunks(0, 16, 8), 0u);
  EXPECT_EQ(Scheduler::PlanChunks(15, 16, 8), 1u);
  EXPECT_EQ(Scheduler::PlanChunks(16, 16, 8), 1u);
  EXPECT_EQ(Scheduler::PlanChunks(17, 16, 8), 2u);
  EXPECT_EQ(Scheduler::PlanChunks(1000, 16, 8), 8u);  // capped
  EXPECT_EQ(Scheduler::PlanChunks(100, 0, 8), 8u);    // grain clamps to 1
}

using ChunkTriple = std::tuple<std::size_t, std::size_t, std::size_t>;

std::vector<ChunkTriple> CollectChunks(Scheduler* pool, std::size_t begin,
                                       std::size_t end, std::size_t chunks,
                                       std::size_t max_threads) {
  std::vector<ChunkTriple> seen;
  std::mutex mu;
  pool->ParallelForChunks(
      begin, end, chunks, max_threads,
      [&seen, &mu](std::size_t c, std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        seen.emplace_back(c, lo, hi);
      });
  std::sort(seen.begin(), seen.end());
  return seen;
}

TEST(Scheduler, ChunkGeometryIndependentOfThreadCount) {
  Scheduler pool(4);
  const auto serial = CollectChunks(&pool, 3, 1003, 7, /*max_threads=*/1);
  for (std::size_t threads : {2u, 4u, 9u}) {
    EXPECT_EQ(CollectChunks(&pool, 3, 1003, 7, threads), serial)
        << "at " << threads << " threads";
  }
}

TEST(Scheduler, NestedRegionsRunInline) {
  Scheduler pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 8, 1, 4, [&pool, &total](std::size_t lo,
                                               std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      // A region submitted from inside a worker must not deadlock.
      pool.ParallelFor(0, 4, 1, 4, [&total](std::size_t a, std::size_t b) {
        total.fetch_add(static_cast<int>(b - a),
                        std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(Scheduler, ResolveNumThreadsPrefersExplicitRequest) {
  EXPECT_EQ(Scheduler::ResolveNumThreads(3), 3u);
  EXPECT_GE(Scheduler::ResolveNumThreads(0), 1u);
}

// ---- Bitwise engine determinism across thread counts -----------------------

struct Fixture {
  graph::DynamicDiGraph base;
  la::DenseMatrix s0;
  std::vector<graph::EdgeUpdate> stream;
  simrank::SimRankOptions options;
};

// Clustered graph (prunable similarity structure) + a mixed
// insert/delete stream. `n` large enough that the dense-expansion
// kernels really chunk (grain 256 ⇒ 3 chunks at n = 520+).
Fixture MakeFixture(std::size_t n, std::size_t inserts, std::size_t deletes,
                    int iterations) {
  Fixture f;
  auto stream = graph::EvolvingLinkage({.num_nodes = n,
                                        .num_edges = 8 * n,
                                        .num_communities = n / 65,
                                        .intra_community_prob = 1.0,
                                        .seed = 29});
  EXPECT_TRUE(stream.ok());
  f.base = graph::MaterializeGraph(n, stream.value());
  f.options.iterations = iterations;
  f.s0 = simrank::BatchMatrix(f.base, f.options);

  Rng rng(41);
  auto ins = graph::SampleInsertions(f.base, inserts, &rng);
  auto del = graph::SampleDeletions(f.base, deletes, &rng);
  EXPECT_TRUE(ins.ok() && del.ok());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < ins->size() || b < del->size()) {  // 3:2 interleave
    for (int k = 0; k < 3 && a < ins->size(); ++k) {
      f.stream.push_back((*ins)[a++]);
    }
    for (int k = 0; k < 2 && b < del->size(); ++k) {
      f.stream.push_back((*del)[b++]);
    }
  }
  return f;
}

std::vector<int> ThreadCounts() {
  return {1, 2, 4, static_cast<int>(Scheduler::ResolveNumThreads(0))};
}

// Result of one replay: the final matrix plus the epoch views a serving
// reader would have pinned along the way (ScoreStore runs only).
struct Replay {
  la::DenseMatrix final_s;
  std::vector<la::DenseMatrix> epochs;
};

enum class Mode { kIncSrUnit, kIncUsrUnit, kCoalescedBatch };

template <typename SMatrix>
void Drive(const Fixture& f, Mode mode, int threads,
           graph::DynamicDiGraph* g, la::DynamicRowMatrix* q, SMatrix* s,
           const std::function<void()>& after_each) {
  simrank::SimRankOptions options = f.options;
  options.num_threads = threads;
  switch (mode) {
    case Mode::kIncSrUnit: {
      core::IncSrEngine engine(options);
      for (const graph::EdgeUpdate& u : f.stream) {
        ASSERT_TRUE(engine.ApplyUpdate(u, g, q, s).ok());
        after_each();
      }
      break;
    }
    case Mode::kIncUsrUnit: {
      for (const graph::EdgeUpdate& u : f.stream) {
        ASSERT_TRUE(core::IncUsrApplyUpdate(u, options, g, q, s).ok());
        after_each();
      }
      break;
    }
    case Mode::kCoalescedBatch: {
      core::CoalescedBatchEngine engine(options);
      ASSERT_TRUE(engine.ApplyBatch(f.stream, g, q, s).ok());
      after_each();
      break;
    }
  }
}

Replay ReplayDense(const Fixture& f, Mode mode, int threads) {
  graph::DynamicDiGraph g = f.base;
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  la::DenseMatrix s = f.s0;
  Drive(f, mode, threads, &g, &q, &s, [] {});
  return Replay{std::move(s), {}};
}

Replay ReplayStore(const Fixture& f, Mode mode, int threads,
                   std::size_t publish_every) {
  graph::DynamicDiGraph g = f.base;
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  la::ScoreStore s{la::DenseMatrix(f.s0)};
  Replay replay;
  std::size_t applied = 0;
  Drive(f, mode, threads, &g, &q, &s, [&] {
    if (++applied % publish_every == 0) {
      replay.epochs.push_back(s.Publish().ToDense());
    }
  });
  replay.final_s = s.ToDense();
  return replay;
}

class ParallelKernelsTest : public ::testing::TestWithParam<Mode> {};

TEST_P(ParallelKernelsTest, DenseBitwiseIdenticalAcrossThreadCounts) {
  // Inc-uSR is O(K·n²) per update — keep its fixture smaller.
  const bool usr = GetParam() == Mode::kIncUsrUnit;
  Fixture f = usr ? MakeFixture(130, 9, 6, 6) : MakeFixture(520, 24, 16, 10);
  Replay serial = ReplayDense(f, GetParam(), 1);
  for (int threads : ThreadCounts()) {
    Replay run = ReplayDense(f, GetParam(), threads);
    EXPECT_TRUE(BitwiseEqual(run.final_s, serial.final_s))
        << "dense S diverged at " << threads << " threads";
  }
}

TEST_P(ParallelKernelsTest, StoreEpochsByteIdenticalAcrossThreadCounts) {
  const bool usr = GetParam() == Mode::kIncUsrUnit;
  Fixture f = usr ? MakeFixture(130, 9, 6, 6) : MakeFixture(520, 24, 16, 10);
  const std::size_t publish_every = 8;
  Replay serial = ReplayStore(f, GetParam(), 1, publish_every);
  // The store path must also match the dense path bitwise (same kernels,
  // different container).
  EXPECT_TRUE(
      BitwiseEqual(serial.final_s, ReplayDense(f, GetParam(), 1).final_s));
  for (int threads : ThreadCounts()) {
    Replay run = ReplayStore(f, GetParam(), threads, publish_every);
    EXPECT_TRUE(BitwiseEqual(run.final_s, serial.final_s))
        << "store S diverged at " << threads << " threads";
    ASSERT_EQ(run.epochs.size(), serial.epochs.size());
    for (std::size_t e = 0; e < run.epochs.size(); ++e) {
      EXPECT_TRUE(BitwiseEqual(run.epochs[e], serial.epochs[e]))
          << "epoch " << e << " diverged at " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllUpdatePaths, ParallelKernelsTest,
                         ::testing::Values(Mode::kIncSrUnit,
                                           Mode::kIncUsrUnit,
                                           Mode::kCoalescedBatch),
                         [](const auto& info) {
                           switch (info.param) {
                             case Mode::kIncSrUnit: return "IncSR";
                             case Mode::kIncUsrUnit: return "IncUSR";
                             case Mode::kCoalescedBatch: return "Coalesced";
                           }
                           return "Unknown";
                         });

// A view pinned BEFORE parallel updates must stay byte-stable: the
// scatter pre-materializes every COW clone serially before handing rows
// to the pool, so no worker ever writes into a shard a view still
// references.
TEST(ParallelKernelsCow, PinnedViewSurvivesParallelUpdates) {
  Fixture f = MakeFixture(520, 24, 16, 10);
  graph::DynamicDiGraph g = f.base;
  la::DynamicRowMatrix q = graph::BuildTransition(g);
  la::ScoreStore s{la::DenseMatrix(f.s0)};
  la::ScoreStore::View pinned = s.Publish();

  simrank::SimRankOptions options = f.options;
  options.num_threads = 4;
  core::IncSrEngine engine(options);
  for (const graph::EdgeUpdate& u : f.stream) {
    ASSERT_TRUE(engine.ApplyUpdate(u, &g, &q, &s).ok());
  }
  EXPECT_EQ(la::MaxAbsDiff(pinned, f.s0), 0.0);
  EXPECT_TRUE(BitwiseEqual(pinned.ToDense(), f.s0));
}

}  // namespace
}  // namespace incsr
