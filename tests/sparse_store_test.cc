// Property suite for the tiered sparse row backings (docs/score_store.md):
//   - Row-level drop rule: entries >= eps and protected keep_cols survive a
//     sparsification, exact +0.0 entries drop losslessly, lossy drops are
//     counted and bounded, the density gate refuses rows that would not
//     compress, and eps = 0 is bitwise.
//   - Serving-layer equivalence: dense-store and tiered-store services fed
//     the same stream agree bitwise at eps = 0 and within the store's own
//     recorded error bound at eps > 0 — per UpdateAlgorithm, and through
//     the sharded facade at shard counts 1 and 4.
//   - Concurrency: a pinned view's bytes survive tier migration
//     (SparsifyRow/DensifyRow) racing reader checksums. TSan-clean; CI
//     runs this suite under -fsanitize=thread and -fsanitize=address.
//   - Adaptive per-node top-k capacity: clamp/truncate mechanics and the
//     fallback -> grow -> index-served loop through the service.
//   - CreateIsolated: the sparse-direct (1-C)I entry point matches the
//     dense Create on an edgeless graph, before and after inserts.
//   - Graph COW: snapshots and copies stay byte-stable across mutation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "graph/generators.h"
#include "graph/update_stream.h"
#include "la/score_store.h"
#include "service/simrank_service.h"
#include "service/topk_index.h"
#include "shard/sharded_service.h"
#include "simrank/options.h"

namespace incsr {
namespace {

la::DenseMatrix TestMatrix(std::size_t rows, std::size_t cols,
                           std::uint64_t seed = 7) {
  Rng rng(seed);
  la::DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = m.RowPtr(i);
    for (std::size_t j = 0; j < cols; ++j) row[j] = rng.NextDouble();
  }
  return m;
}

// ---- Row-level drop rule --------------------------------------------------

TEST(SparseRowBlock, DropRuleKeepsLargeAndProtectedEntries) {
  const std::size_t n = 8;
  la::DenseMatrix m(n, n);  // zero-initialized
  // Row 0: a large entry, a protected small entry, an unprotected small
  // entry, and exact zeros everywhere else.
  m.RowPtr(0)[1] = 0.5;
  m.RowPtr(0)[2] = 0.01;  // protected by keep_cols below
  m.RowPtr(0)[3] = 0.02;  // lossy drop: |v| < eps
  la::ScoreStore store(std::move(m));
  store.set_sparsity({.epsilon = 0.1, .max_density = 1.0,
                      .error_amplification = 2.5});

  const std::int32_t keep[] = {2};
  std::size_t dropped = 0;
  ASSERT_TRUE(store.SparsifyRow(0, keep, &dropped));
  EXPECT_TRUE(store.RowIsSparse(0));
  EXPECT_EQ(dropped, 1u);  // only the 0.02: zeros are lossless drops
  EXPECT_EQ(store(0, 1), 0.5);
  EXPECT_EQ(store(0, 2), 0.01);  // survives despite |v| < eps
  EXPECT_EQ(store(0, 3), 0.0);   // dropped
  EXPECT_EQ(store(0, 0), 0.0);
  EXPECT_EQ(store.stats().eps_drops, 1u);
  EXPECT_EQ(store.stats().rows_sparse, 1u);
  // Bound: max dropped magnitude times the configured amplification.
  EXPECT_DOUBLE_EQ(store.stats().max_error_bound, 0.02 * 2.5);
  EXPECT_GT(store.bytes_saved(), 0u);

  // Promotion restores the dense layout with the drops baked in (the
  // bound persists — the information is gone).
  ASSERT_TRUE(store.DensifyRow(0));
  EXPECT_FALSE(store.RowIsSparse(0));
  EXPECT_EQ(store(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(store.stats().max_error_bound, 0.02 * 2.5);
}

TEST(SparseRowBlock, EpsilonZeroSparsificationIsBitwise) {
  const std::size_t n = 12;
  la::DenseMatrix dense = TestMatrix(n, n, 3);
  // Plant exact zeros so there is something to elide losslessly.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; j += 3) dense.RowPtr(i)[j] = 0.0;
  }
  la::ScoreStore store((la::DenseMatrix(dense)));
  store.set_sparsity({.epsilon = 0.0, .max_density = 1.0});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.SparsifyRow(i, {}));
  }
  EXPECT_EQ(store.stats().rows_sparse, n);
  EXPECT_EQ(store.stats().eps_drops, 0u);
  EXPECT_EQ(store.stats().max_error_bound, 0.0);
  EXPECT_TRUE(la::BitwiseEqual(store.ToDense(), dense));
  // ReadRow gathers the identical bytes.
  la::Vector scratch;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = store.ReadRow(i, &scratch);
    for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(row[j], dense(i, j));
  }
}

TEST(SparseRowBlock, DensityGateRefusesIncompressibleRows) {
  la::ScoreStore store(TestMatrix(6, 6, 5));  // every entry in (0, 1)
  store.set_sparsity({.epsilon = 1e-6, .max_density = 0.5});
  EXPECT_FALSE(store.SparsifyRow(2, {}));  // nothing droppable: stays dense
  EXPECT_FALSE(store.RowIsSparse(2));
  EXPECT_EQ(store.stats().rows_sparse, 0u);
  // Re-sparsifying an already-sparse row is refused too.
  store.set_sparsity({.epsilon = 2.0, .max_density = 1.0});
  EXPECT_TRUE(store.SparsifyRow(2, {}));
  EXPECT_FALSE(store.SparsifyRow(2, {}));
}

TEST(SparseRowBlock, ScaledIdentityIsSparseDirect) {
  const std::size_t n = 64;
  la::ScoreStore store = la::ScoreStore::ScaledIdentity(n, 0.4);
  EXPECT_EQ(store.rows(), n);
  EXPECT_EQ(store.cols(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(store.RowIsSparse(i));
    EXPECT_EQ(store(i, i), 0.4);
    EXPECT_EQ(store(i, (i + 1) % n), 0.0);
  }
  // One stored entry per row: payload nowhere near the dense slab.
  EXPECT_LT(store.payload_bytes(), n * n * sizeof(double) / 4);
  // Densify-on-write keeps the content.
  store.MutableRowPtr(5)[9] = 1.25;
  EXPECT_FALSE(store.RowIsSparse(5));
  EXPECT_EQ(store(5, 5), 0.4);
  EXPECT_EQ(store(5, 9), 1.25);
}

TEST(SparseRowBlock, TierMovesLandInTouchedDeltaAndViewsStayStable) {
  const std::size_t n = 10;
  la::DenseMatrix dense = TestMatrix(n, n, 11);
  dense.RowPtr(4)[0] = 0.0;  // give row 4 something to elide
  la::ScoreStore store((la::DenseMatrix(dense)));
  store.set_sparsity({.epsilon = 0.0, .max_density = 1.0});
  la::ScoreStore::View view = store.Publish();

  ASSERT_TRUE(store.SparsifyRow(4, {}));
  // The shared->unshared transition recorded the row for the serving
  // layer's re-rank/invalidation pass.
  ASSERT_EQ(store.touched_rows().size(), 1u);
  EXPECT_EQ(store.touched_rows()[0], 4);
  // The pinned view still reads the dense pre-demotion block, bitwise.
  EXPECT_FALSE(view.RowIsSparse(4));
  EXPECT_TRUE(la::BitwiseEqual(view.ToDense(), dense));

  la::ScoreStore::View second = store.Publish();
  EXPECT_TRUE(second.RowIsSparse(4));
  ASSERT_TRUE(store.DensifyRow(4));
  ASSERT_EQ(store.touched_rows().size(), 1u);
  EXPECT_EQ(store.touched_rows()[0], 4);
  EXPECT_TRUE(second.RowIsSparse(4));  // the pinned sparse view is stable
  EXPECT_TRUE(la::BitwiseEqual(second.ToDense(), dense));
}

// ---- Serving-layer equivalence --------------------------------------------

std::vector<graph::EdgeUpdate> InsertStream(const graph::DynamicDiGraph& graph,
                                            std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  auto ins = graph::SampleInsertions(graph, count, &rng);
  INCSR_CHECK(ins.ok(), "sampling failed");
  return std::move(ins).value();
}

service::ServiceOptions TieredOptions(double epsilon) {
  service::ServiceOptions options;
  options.max_batch = 8;
  options.sparse.enabled = true;
  options.sparse.epsilon = epsilon;
  options.sparse.max_density = 1.0;  // compress whenever allowed
  options.sparse.hot_reads = 1;      // demote anything the sketch missed
  options.sparse.scan_rows_per_publish = 1024;
  return options;
}

// Runs the same stream through a dense-store service and a tiered-store
// service; returns (dense final S, sparse final S, sparse stats).
struct EquivalenceRun {
  la::DenseMatrix dense_s;
  la::DenseMatrix sparse_s;
  service::ServiceStats sparse_stats;
};

EquivalenceRun RunEquivalence(const graph::DynamicDiGraph& graph,
                              const std::vector<graph::EdgeUpdate>& stream,
                              core::UpdateAlgorithm algorithm,
                              double epsilon) {
  simrank::SimRankOptions sr;
  sr.damping = 0.6;
  sr.iterations = 8;
  EquivalenceRun out;
  for (bool tiered : {false, true}) {
    auto index = core::DynamicSimRank::Create(graph, sr, algorithm);
    EXPECT_TRUE(index.ok());
    // Identical options either side — batch boundaries change coalescing
    // and hence FP order, so only the sparsity switch may differ.
    service::ServiceOptions options = TieredOptions(epsilon);
    options.sparse.enabled = tiered;
    auto service =
        service::SimRankService::Create(std::move(index).value(), options);
    EXPECT_TRUE(service.ok());
    // Flush after every Submit pins deterministic unit batches: batch
    // boundaries depend on applier timing otherwise, and coalescing makes
    // FP order a function of the boundary (shard_test's idiom).
    for (const graph::EdgeUpdate& u : stream) {
      EXPECT_TRUE((*service)->Submit(u).ok());
      EXPECT_TRUE((*service)->Flush().ok());
    }
    if (tiered) {
      out.sparse_s = (*service)->Snapshot()->scores.ToDense();
      out.sparse_stats = (*service)->stats();
    } else {
      out.dense_s = (*service)->Snapshot()->scores.ToDense();
    }
  }
  return out;
}

TEST(TieredService, EpsilonZeroIsBitwisePerAlgorithm) {
  auto seed = graph::ErdosRenyiGnm(20, 50, 5);
  ASSERT_TRUE(seed.ok());
  auto graph = graph::MaterializeGraph(20, seed.value());
  auto stream = InsertStream(graph, 12, 17);
  for (auto algorithm :
       {core::UpdateAlgorithm::kIncSR, core::UpdateAlgorithm::kIncUSR}) {
    EquivalenceRun run = RunEquivalence(graph, stream, algorithm, 0.0);
    EXPECT_TRUE(la::BitwiseEqual(run.sparse_s, run.dense_s));
    EXPECT_EQ(run.sparse_stats.sparse_eps_drops, 0u);
    EXPECT_EQ(run.sparse_stats.sparse_max_error_bound, 0.0);
    // The policy actually exercised the sparse layout.
    EXPECT_GT(run.sparse_stats.tier_demotions, 0u);
  }
}

TEST(TieredService, EpsilonErrorStaysWithinRecordedBound) {
  // A sparse graph, so rows carry many sub-epsilon scores to drop.
  auto seed = graph::ErdosRenyiGnm(40, 60, 9);
  ASSERT_TRUE(seed.ok());
  auto graph = graph::MaterializeGraph(40, seed.value());
  auto stream = InsertStream(graph, 16, 23);
  for (auto algorithm :
       {core::UpdateAlgorithm::kIncSR, core::UpdateAlgorithm::kIncUSR}) {
    EquivalenceRun run = RunEquivalence(graph, stream, algorithm, 1e-4);
    EXPECT_GT(run.sparse_stats.rows_sparse, 0u);
    double max_err = 0.0;
    for (std::size_t i = 0; i < run.dense_s.rows(); ++i) {
      for (std::size_t j = 0; j < run.dense_s.cols(); ++j) {
        max_err = std::max(max_err,
                           std::abs(run.sparse_s(i, j) - run.dense_s(i, j)));
      }
    }
    EXPECT_LE(max_err, run.sparse_stats.sparse_max_error_bound + 1e-15);
  }
}

// Four disjoint ER blocks: the shape that shards cleanly, with the stream
// confined to blocks so every update is intra-shard at any shard count.
void BuildShardableWorkload(graph::DynamicDiGraph* graph,
                            std::vector<graph::EdgeUpdate>* stream) {
  const std::size_t blocks = 4;
  const std::size_t bn = 10;
  *graph = graph::DynamicDiGraph(blocks * bn);
  Rng rng(31);
  for (std::size_t c = 0; c < blocks; ++c) {
    auto block_seed = graph::ErdosRenyiGnm(bn, 24, 40 + c);
    ASSERT_TRUE(block_seed.ok());
    auto block = graph::MaterializeGraph(bn, block_seed.value());
    const auto base = static_cast<graph::NodeId>(c * bn);
    for (const graph::Edge& e : block.Edges()) {
      ASSERT_TRUE(graph->AddEdge(base + e.src, base + e.dst).ok());
    }
    auto ins = graph::SampleInsertions(block, 6, &rng);
    ASSERT_TRUE(ins.ok());
    for (graph::EdgeUpdate u : ins.value()) {
      u.src += base;
      u.dst += base;
      stream->push_back(u);
    }
  }
}

TEST(TieredService, ShardedEquivalenceAtOneAndFourShards) {
  graph::DynamicDiGraph graph;
  std::vector<graph::EdgeUpdate> stream;
  BuildShardableWorkload(&graph, &stream);
  simrank::SimRankOptions sr;
  sr.damping = 0.6;
  sr.iterations = 8;

  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    // Dense sharded reference: same per-shard options, sparsity off, so
    // batch boundaries (and hence FP order) match the tiered run.
    shard::ShardedServiceOptions dense_options;
    dense_options.num_shards = shards;
    dense_options.per_shard = TieredOptions(1e-4);
    dense_options.per_shard.sparse.enabled = false;
    auto dense = shard::ShardedSimRankService::Create(graph, sr, dense_options);
    ASSERT_TRUE(dense.ok());
    // Tiered sharded candidate (the per-shard options carry the policy).
    shard::ShardedServiceOptions tiered_options;
    tiered_options.num_shards = shards;
    tiered_options.per_shard = TieredOptions(1e-4);
    auto tiered =
        shard::ShardedSimRankService::Create(graph, sr, tiered_options);
    ASSERT_TRUE(tiered.ok());

    // Unit batches (Flush per Submit) so boundaries are deterministic on
    // both sides — see RunEquivalence.
    for (const graph::EdgeUpdate& u : stream) {
      ASSERT_TRUE((*dense)->Submit(u).ok());
      ASSERT_TRUE((*dense)->Flush().ok());
      ASSERT_TRUE((*tiered)->Submit(u).ok());
      ASSERT_TRUE((*tiered)->Flush().ok());
    }

    const service::ServiceStats totals = (*tiered)->stats().total;
    EXPECT_GT(totals.rows_sparse, 0u);
    const double bound = totals.sparse_max_error_bound;
    const auto n = static_cast<graph::NodeId>(graph.num_nodes());
    for (graph::NodeId a = 0; a < n; ++a) {
      for (graph::NodeId b = 0; b < n; ++b) {
        auto exact = (*dense)->Score(a, b);
        auto served = (*tiered)->Score(a, b);
        ASSERT_TRUE(exact.ok() && served.ok());
        EXPECT_LE(std::abs(*served - *exact), bound + 1e-15)
            << "pair (" << a << ", " << b << ") at " << shards << " shard(s)";
      }
    }
  }
}

// ---- Concurrency: pinned views vs tier migration --------------------------

TEST(TieredConcurrency, PinnedViewStaysByteStableUnderTierMigration) {
  const std::size_t n = 24;
  la::DenseMatrix initial = TestMatrix(n, n, 41);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; j += 2) initial.RowPtr(i)[j] = 0.0;
  }
  la::ScoreStore store((la::DenseMatrix(initial)));
  store.set_sparsity({.epsilon = 0.0, .max_density = 1.0});

  std::mutex mu;
  auto latest = std::make_shared<const la::ScoreStore::View>(store.Publish());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checks{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      la::Vector scratch;
      do {
        std::shared_ptr<const la::ScoreStore::View> pinned;
        {
          std::lock_guard<std::mutex> lock(mu);
          pinned = latest;
        }
        // Checksum twice with tier churn in between; a migration that
        // mutated shared bytes diverges the sums.
        double sum1 = 0.0;
        double sum2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double* row = pinned->ReadRow(i, &scratch);
          for (std::size_t j = 0; j < n; ++j) sum1 += row[j];
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double* row = pinned->ReadRow(i, &scratch);
          for (std::size_t j = 0; j < n; ++j) sum2 += row[j];
        }
        INCSR_CHECK(sum1 == sum2, "pinned view bytes changed");
        checks.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  Rng rng(55);
  for (int epoch = 0; epoch < 200; ++epoch) {
    // Tier churn + writes: every epoch demotes a band, promotes another,
    // and writes through a third (densify-on-write).
    for (std::size_t i = 0; i < n; ++i) {
      switch ((i + static_cast<std::size_t>(epoch)) % 3) {
        case 0:
          store.SparsifyRow(i, {});
          break;
        case 1:
          store.DensifyRow(i);
          break;
        default:
          store.MutableRowPtr(i)[rng.NextBounded(n)] = rng.NextDouble();
      }
    }
    auto next = std::make_shared<const la::ScoreStore::View>(store.Publish());
    std::lock_guard<std::mutex> lock(mu);
    latest = std::move(next);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(checks.load(), 0u);
  EXPECT_GT(store.stats().rows_sparsified, 0u);
  EXPECT_GT(store.stats().rows_densified, 0u);
}

// ---- Adaptive per-node top-k capacity --------------------------------------

TEST(AdaptiveTopK, NodeCapacityClampsAndTruncates) {
  la::ScoreStore scores(TestMatrix(12, 12, 13));
  service::TopKIndex index(/*capacity=*/4);
  index.RebuildAll(scores);
  EXPECT_EQ(index.NodeCapacity(3), 4u);
  EXPECT_EQ(index.EntryItems(3).size(), 4u);

  // Clamp: [max(1, base/4), 2*base] = [1, 8].
  EXPECT_EQ(index.SetNodeCapacity(3, 100), 8u);
  EXPECT_EQ(index.NodeCapacity(3), 8u);
  // A grow does not refill by itself: the entry is re-earned by a rebuild.
  EXPECT_EQ(index.EntryItems(3).size(), 4u);
  const std::int32_t rows[] = {3};
  index.RebuildRows(scores, rows);
  EXPECT_EQ(index.EntryItems(3).size(), 8u);

  // Shrink truncates in place to an exact prefix of the contract order.
  auto before = std::vector<core::ScoredPair>(index.EntryItems(3).begin(),
                                              index.EntryItems(3).end());
  EXPECT_EQ(index.SetNodeCapacity(3, 0), 1u);
  ASSERT_EQ(index.EntryItems(3).size(), 1u);
  EXPECT_EQ(index.EntryItems(3)[0], before[0]);
  // Unadapted rows are untouched.
  EXPECT_EQ(index.NodeCapacity(5), 4u);
  EXPECT_EQ(index.EntryItems(5).size(), 4u);
}

TEST(AdaptiveTopK, ServiceGrowsCapacityAfterFallback) {
  auto seed = graph::ErdosRenyiGnm(16, 40, 19);
  ASSERT_TRUE(seed.ok());
  auto graph = graph::MaterializeGraph(16, seed.value());
  simrank::SimRankOptions sr;
  sr.damping = 0.6;
  sr.iterations = 8;
  auto index = core::DynamicSimRank::Create(graph, sr);
  ASSERT_TRUE(index.ok());
  service::ServiceOptions options;
  options.topk_index_capacity = 4;
  options.adaptive_topk_index = true;
  options.cache_capacity = 0;  // every query exercises the index path
  auto service =
      service::SimRankService::Create(std::move(index).value(), options);
  ASSERT_TRUE(service.ok());

  // k = 8 is past the base entry (4) but within the 2x clamp: fallback.
  const graph::NodeId query = 3;
  auto first = (*service)->TopKFor(query, 8);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*service)->stats().topk_index_fallbacks, 1u);

  // The next publish drains the grow queue and re-ranks the row.
  auto stream = InsertStream(graph, 2, 29);
  for (const graph::EdgeUpdate& u : stream) {
    ASSERT_TRUE((*service)->Submit(u).ok());
  }
  ASSERT_TRUE((*service)->Flush().ok());
  EXPECT_GE((*service)->stats().topk_cap_grows, 1u);

  // Same query now rides the grown entry — and matches the row scan.
  auto second = (*service)->TopKFor(query, 8);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*service)->stats().topk_index_served, 1u);
  EXPECT_EQ((*service)->stats().topk_index_fallbacks, 1u);  // unchanged
  auto snapshot = (*service)->Snapshot();
  EXPECT_EQ(*second, core::TopKForOf(snapshot->scores, query, 8));
}

// ---- CreateIsolated --------------------------------------------------------

TEST(CreateIsolated, MatchesDenseCreateBeforeAndAfterInserts) {
  const std::size_t n = 12;
  simrank::SimRankOptions sr;
  sr.damping = 0.6;
  sr.iterations = 8;
  auto isolated = core::DynamicSimRank::CreateIsolated(n, sr);
  auto dense = core::DynamicSimRank::Create(graph::DynamicDiGraph(n), sr);
  ASSERT_TRUE(isolated.ok());
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(la::MaxAbsDiff(isolated->scores(), dense->scores()), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(isolated->scores().RowIsSparse(i));
    EXPECT_EQ(isolated->Score(static_cast<graph::NodeId>(i),
                              static_cast<graph::NodeId>(i)),
              1.0 - sr.damping);
  }

  // Same kernels, same bytes once structure grows (rows densify on write).
  const graph::Edge edges[] = {{0, 1}, {2, 1}, {3, 1}, {0, 4}, {5, 4}, {2, 6}};
  for (const graph::Edge& e : edges) {
    ASSERT_TRUE(isolated->InsertEdge(e.src, e.dst).ok());
    ASSERT_TRUE(dense->InsertEdge(e.src, e.dst).ok());
  }
  EXPECT_TRUE(
      la::BitwiseEqual(isolated->scores().ToDense(), dense->scores().ToDense()));
}

// ---- Graph COW --------------------------------------------------------------

TEST(GraphCow, SnapshotStaysByteStableAcrossMutation) {
  graph::DynamicDiGraph g(6);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  graph::DynamicDiGraph::View snap = g.Snapshot();
  EXPECT_EQ(snap.num_edges(), 2u);
  EXPECT_EQ(g.cow_bytes_copied(), 0u);  // snapshot itself copies nothing

  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  ASSERT_TRUE(g.RemoveEdge(2, 1).ok());
  EXPECT_GT(g.cow_bytes_copied(), 0u);
  // The pinned view still serves the pre-mutation adjacency.
  EXPECT_EQ(snap.num_edges(), 2u);
  EXPECT_TRUE(snap.HasEdge(2, 1));
  EXPECT_FALSE(snap.HasEdge(0, 3));
  ASSERT_EQ(snap.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(snap.OutNeighbors(0)[0], 1);
  EXPECT_EQ(g.OutNeighbors(0).size(), 2u);
}

TEST(GraphCow, CopiesHaveValueSemanticsWithLazyPayload) {
  graph::DynamicDiGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  graph::DynamicDiGraph copy = g;
  EXPECT_TRUE(copy == g);

  // Mutating either side never shows through on the other.
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  EXPECT_FALSE(copy.HasEdge(3, 4));
  ASSERT_TRUE(copy.RemoveEdge(0, 1).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(copy.num_edges(), 1u);
}

}  // namespace
}  // namespace incsr
