// Tests for the common substrate: Status/Result, memory tracking, RNG
// determinism and distribution sanity, timers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/memory.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "la/vector.h"

namespace incsr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("edge (1, 2)");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "edge (1, 2)");
  EXPECT_EQ(s.ToString(), "NotFound: edge (1, 2)");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kIoError, StatusCode::kNotSupported,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status Inner() { return Status::IoError("disk"); }
Status Outer() {
  INCSR_RETURN_IF_ERROR(Inner());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Outer().code(), StatusCode::kIoError);
}

TEST(MemoryTest, TrackedAllocationMovesCounters) {
  auto& counter = MemoryCounter::Global();
  std::int64_t before = counter.current_bytes();
  {
    la::Vector v(1 << 16);  // 512 KB through the tracked allocator
    EXPECT_GE(counter.current_bytes(), before + (1 << 16) * 8);
  }
  EXPECT_LE(counter.current_bytes(), before + 1024);
}

TEST(MemoryTest, ScopeMeasuresPeakDelta) {
  MemoryScope scope;
  { la::Vector v(1 << 14); }
  std::int64_t peak = scope.PeakDeltaBytes();
  EXPECT_GE(peak, (1 << 14) * 8);
}

TEST(MemoryTest, HumanBytesFormats) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
  EXPECT_EQ(HumanBytes(int64_t{5} * 1024 * 1024 * 1024), "5.0 GB");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= (a2.NextU64() != c.NextU64());
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    std::uint64_t v = rng.NextBounded(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(8);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.05);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_DOUBLE_EQ(timer.ElapsedMillis() >= elapsed * 1e3 ? 1.0 : 0.0, 1.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace incsr
