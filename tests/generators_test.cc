// Tests for the synthetic graph generators, snapshot series, and dataset
// stand-ins: determinism, size contracts, degree-profile sanity, and
// snapshot/delta consistency.
#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/datasets.h"
#include "graph/generators.h"
#include "graph/snapshots.h"

namespace incsr::graph {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCountNoDuplicatesNoSelfLoops) {
  auto stream = ErdosRenyiGnm(30, 200, 42);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 200u);
  DynamicDiGraph g = MaterializeGraph(30, stream.value());
  EXPECT_EQ(g.num_edges(), 200u);  // all distinct by construction
  for (const auto& te : stream.value()) {
    EXPECT_NE(te.edge.src, te.edge.dst);
  }
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  auto a = ErdosRenyiGnm(20, 50, 7);
  auto b = ErdosRenyiGnm(20, 50, 7);
  auto c = ErdosRenyiGnm(20, 50, 8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
}

TEST(ErdosRenyiTest, RejectsImpossibleDensity) {
  EXPECT_FALSE(ErdosRenyiGnm(3, 100, 1).ok());
  EXPECT_FALSE(ErdosRenyiGnm(1, 1, 1).ok());
}

TEST(PreferentialCitationTest, CitesOnlyEarlierNodes) {
  auto stream = PreferentialCitation(
      {.num_nodes = 200, .mean_out_degree = 4.0, .seed = 3});
  ASSERT_TRUE(stream.ok());
  for (const auto& te : stream.value()) {
    EXPECT_GT(te.edge.src, te.edge.dst)
        << "citation must point backwards in time";
  }
  // Timestamps are non-decreasing (arrival order).
  for (std::size_t k = 1; k < stream->size(); ++k) {
    EXPECT_LE(stream->at(k - 1).timestamp, stream->at(k).timestamp);
  }
}

TEST(PreferentialCitationTest, ProducesHeavyTailedInDegrees) {
  auto stream = PreferentialCitation(
      {.num_nodes = 800, .mean_out_degree = 5.0, .seed = 11});
  ASSERT_TRUE(stream.ok());
  DynamicDiGraph g = MaterializeGraph(800, stream.value());
  std::size_t max_in = 0;
  for (std::size_t v = 0; v < 800; ++v) {
    max_in = std::max(max_in, g.InDegree(static_cast<NodeId>(v)));
  }
  double avg_in = g.AverageInDegree();
  EXPECT_GT(avg_in, 2.0);
  // Rich-get-richer: the hub collects far more than the average.
  EXPECT_GT(static_cast<double>(max_in), 6.0 * avg_in);
}

TEST(PreferentialCitationTest, MeanOutDegreeRoughlyHonored) {
  auto stream = PreferentialCitation(
      {.num_nodes = 1000, .mean_out_degree = 6.0, .seed = 13});
  ASSERT_TRUE(stream.ok());
  double per_node = static_cast<double>(stream->size()) / 1000.0;
  EXPECT_GT(per_node, 3.5);
  EXPECT_LT(per_node, 8.5);
}

TEST(RmatTest, SizeAndSkew) {
  auto stream = Rmat({.scale = 8, .num_edges = 2000, .seed = 5});
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 2000u);
  DynamicDiGraph g = MaterializeGraph(256, stream.value());
  EXPECT_EQ(g.num_edges(), 2000u);
  std::size_t max_out = 0;
  for (std::size_t v = 0; v < 256; ++v) {
    max_out = std::max(max_out, g.OutDegree(static_cast<NodeId>(v)));
  }
  EXPECT_GT(max_out, 3 * 2000 / 256);  // skewed, not uniform
}

TEST(RmatTest, ParameterValidation) {
  EXPECT_FALSE(Rmat({.scale = 0}).ok());
  EXPECT_FALSE(Rmat({.scale = 4, .num_edges = 10, .a = 0.9, .b = 0.2}).ok());
  EXPECT_FALSE(Rmat({.scale = 3, .num_edges = 100000}).ok());
}

TEST(EvolvingLinkageTest, ReachesRequestedSizes) {
  auto stream = EvolvingLinkage(
      {.num_nodes = 300, .num_edges = 1500, .seed = 9});
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 1500u);
  DynamicDiGraph g = MaterializeGraph(300, stream.value());
  EXPECT_EQ(g.num_edges(), 1500u);
  // Every node referenced in the stream is in range.
  for (const auto& te : stream.value()) {
    EXPECT_GE(te.edge.src, 0);
    EXPECT_LT(te.edge.src, 300);
    EXPECT_GE(te.edge.dst, 0);
    EXPECT_LT(te.edge.dst, 300);
  }
}

TEST(EvolvingLinkageTest, ParameterValidation) {
  EXPECT_FALSE(EvolvingLinkage({.num_nodes = 10, .seed_nodes = 20}).ok());
  EXPECT_FALSE(EvolvingLinkage({.num_nodes = 4, .num_edges = 100}).ok());
  EXPECT_FALSE(
      EvolvingLinkage({.num_nodes = 10, .num_communities = 0}).ok());
  EXPECT_FALSE(
      EvolvingLinkage({.num_nodes = 10, .num_communities = 11}).ok());
}

TEST(EvolvingLinkageTest, CommunityStructureIsRespected) {
  const std::size_t n = 600;
  const std::size_t k = 10;  // community of a node = id mod 10
  auto stream = EvolvingLinkage({.num_nodes = n,
                                 .num_edges = 3000,
                                 .num_communities = k,
                                 .intra_community_prob = 1.0,
                                 .seed = 5});
  ASSERT_TRUE(stream.ok());
  std::size_t intra = 0;
  for (const auto& te : stream.value()) {
    if (static_cast<std::size_t>(te.edge.src) % k ==
        static_cast<std::size_t>(te.edge.dst) % k) {
      ++intra;
    }
  }
  // With intra probability 1.0, cross edges only stem from the arrival
  // process bootstrapping empty communities — a vanishing fraction.
  double fraction =
      static_cast<double>(intra) / static_cast<double>(stream->size());
  EXPECT_GT(fraction, 0.95);

  // With a single community the generator degenerates gracefully.
  auto flat = EvolvingLinkage(
      {.num_nodes = 200, .num_edges = 800, .num_communities = 1, .seed = 5});
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->size(), 800u);
}

TEST(SnapshotSeriesTest, CutPointsAndDeltas) {
  auto stream = ErdosRenyiGnm(50, 1000, 17);
  ASSERT_TRUE(stream.ok());
  auto series = SnapshotSeries::FromStream(50, std::move(stream).value(), 5,
                                           /*base_fraction=*/0.8);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->num_snapshots(), 5u);
  EXPECT_EQ(series->EdgesAt(0), 800u);
  EXPECT_EQ(series->EdgesAt(4), 1000u);
  // Snapshots are nested prefixes.
  for (std::size_t k = 1; k < 5; ++k) {
    EXPECT_GE(series->EdgesAt(k), series->EdgesAt(k - 1));
  }
  // Replaying the delta turns snapshot k into snapshot k+1.
  DynamicDiGraph g0 = series->GraphAt(0);
  auto delta = series->DeltaBetween(0, 2);
  ASSERT_TRUE(ApplyUpdates(delta, &g0).ok());
  EXPECT_EQ(g0.Edges(), series->GraphAt(2).Edges());
}

TEST(SnapshotSeriesTest, Validation) {
  auto stream = ErdosRenyiGnm(10, 20, 1);
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(SnapshotSeries::FromStream(10, stream.value(), 0).ok());
  EXPECT_FALSE(SnapshotSeries::FromStream(10, stream.value(), 3, 0.0).ok());
  EXPECT_FALSE(SnapshotSeries::FromStream(10, stream.value(), 3, 1.5).ok());
  // Unsorted stream is rejected.
  auto shuffled = stream.value();
  std::swap(shuffled.front().timestamp, shuffled.back().timestamp);
  shuffled.front().timestamp += 1000;
  EXPECT_FALSE(SnapshotSeries::FromStream(10, shuffled, 3).ok());
}

class DatasetSweep
    : public ::testing::TestWithParam<incsr::datasets::DatasetKind> {};

TEST_P(DatasetSweep, ShapeMatchesScaledPaperNumbers) {
  using incsr::datasets::DatasetOptions;
  using incsr::datasets::FullScaleEdges;
  using incsr::datasets::FullScaleNodes;
  const auto kind = GetParam();
  DatasetOptions options;
  options.scale = 0.02;
  auto series = incsr::datasets::MakeDataset(kind, options);
  ASSERT_TRUE(series.ok());
  const double expected_nodes =
      static_cast<double>(FullScaleNodes(kind)) * options.scale;
  const double expected_edges =
      static_cast<double>(FullScaleEdges(kind)) * options.scale;
  EXPECT_NEAR(static_cast<double>(series->num_nodes()), expected_nodes,
              expected_nodes * 0.02 + 2.0);
  // Generators approximate the edge budget (citation out-degrees are
  // random); 25% slack keeps the average in-degree in the right regime.
  EXPECT_NEAR(static_cast<double>(series->stream_size()), expected_edges,
              expected_edges * 0.25);
  EXPECT_EQ(series->num_snapshots(), 5u);

  // Deterministic in the seed.
  auto again = incsr::datasets::MakeDataset(kind, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->GraphAt(0).Edges(), series->GraphAt(0).Edges());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::Values(incsr::datasets::DatasetKind::kDblp,
                                           incsr::datasets::DatasetKind::kCitH,
                                           incsr::datasets::DatasetKind::kYouTu));

TEST(DatasetTest, NamesAndValidation) {
  using incsr::datasets::DatasetKind;
  EXPECT_EQ(incsr::datasets::DatasetName(DatasetKind::kDblp), "DBLP");
  EXPECT_EQ(incsr::datasets::DatasetName(DatasetKind::kCitH), "CitH");
  EXPECT_EQ(incsr::datasets::DatasetName(DatasetKind::kYouTu), "YouTu");
  incsr::datasets::DatasetOptions bad;
  bad.scale = 0.0;
  EXPECT_FALSE(incsr::datasets::MakeDataset(DatasetKind::kDblp, bad).ok());
}

}  // namespace
}  // namespace incsr::graph
