// Unit and property tests for the linear-algebra substrate: vectors, dense
// matrices, sparse matrices, LU, Kronecker utilities, and the Sylvester
// solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/dense_matrix.h"
#include "la/kron.h"
#include "la/lu.h"
#include "la/sparse_matrix.h"
#include "la/sylvester.h"
#include "la/vector.h"

namespace incsr::la {
namespace {

DenseMatrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

TEST(VectorTest, BasisAndNorms) {
  Vector e = Vector::Basis(5, 2);
  EXPECT_EQ(e.size(), 5u);
  EXPECT_DOUBLE_EQ(e[2], 1.0);
  EXPECT_DOUBLE_EQ(e.Norm2(), 1.0);
  EXPECT_DOUBLE_EQ(e.Sum(), 1.0);
  EXPECT_EQ(e.CountNonZero(), 1u);
}

TEST(VectorTest, AxpyDotScale) {
  Vector x{1.0, 2.0, 3.0};
  Vector y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 32.0);
  y.Axpy(2.0, x);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  y.Scale(0.5);
  EXPECT_DOUBLE_EQ(y[1], 4.5);
}

TEST(VectorTest, MaxAbsAndDiff) {
  Vector x{-3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(x.MaxAbs(), 3.0);
  Vector y{-3.0, 1.5, 2.0};
  EXPECT_DOUBLE_EQ(MaxAbsDiff(x, y), 0.5);
}

TEST(SparseVectorTest, AppendAtToDense) {
  SparseVector sv(6);
  sv.Append(1, 2.0);
  sv.Append(4, -1.0);
  EXPECT_EQ(sv.nnz(), 2u);
  EXPECT_DOUBLE_EQ(sv.At(1), 2.0);
  EXPECT_DOUBLE_EQ(sv.At(2), 0.0);
  Vector dense = sv.ToDense();
  EXPECT_DOUBLE_EQ(dense[4], -1.0);
  EXPECT_EQ(dense.CountNonZero(), 2u);
}

TEST(SparseVectorTest, FromDenseRoundTrip) {
  Vector dense{0.0, 1.5, 0.0, -2.0, 0.0};
  SparseVector sv = SparseVector::FromDense(dense);
  EXPECT_EQ(sv.nnz(), 2u);
  EXPECT_EQ(MaxAbsDiff(sv.ToDense(), dense), 0.0);
}

TEST(SparseVectorTest, DotAndAxpy) {
  SparseVector a(5);
  a.Append(0, 1.0);
  a.Append(3, 2.0);
  SparseVector b(5);
  b.Append(3, 4.0);
  b.Append(4, 1.0);
  EXPECT_DOUBLE_EQ(Dot(a, b), 8.0);
  Vector dense{1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.DotDense(dense), 3.0);
  a.AxpyInto(2.0, &dense);
  EXPECT_DOUBLE_EQ(dense[0], 3.0);
  EXPECT_DOUBLE_EQ(dense[3], 5.0);
}

TEST(DenseMatrixTest, IdentityAndDiagonal) {
  DenseMatrix id = DenseMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  DenseMatrix d = DenseMatrix::Diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
}

TEST(DenseMatrixTest, MultiplyAgainstHandComputed) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {3, 4}});
  DenseMatrix b = DenseMatrix::FromRows({{5, 6}, {7, 8}});
  DenseMatrix c = Multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(DenseMatrixTest, TransposeVariantsAgree) {
  Rng rng(7);
  DenseMatrix a = RandomMatrix(9, 5, &rng);
  DenseMatrix b = RandomMatrix(7, 5, &rng);
  // A·Bᵀ two ways.
  DenseMatrix direct = MultiplyTransposeB(a, b);
  DenseMatrix via_transpose = Multiply(a, b.Transpose());
  EXPECT_LT(MaxAbsDiff(direct, via_transpose), 1e-12);
  // Aᵀ·B two ways.
  DenseMatrix c = RandomMatrix(9, 4, &rng);
  DenseMatrix direct2 = MultiplyTransposeA(a, c);
  DenseMatrix via2 = Multiply(a.Transpose(), c);
  EXPECT_LT(MaxAbsDiff(direct2, via2), 1e-12);
}

TEST(DenseMatrixTest, OuterProductAndRankOneUpdate) {
  Vector x{1.0, 2.0};
  Vector y{3.0, 4.0, 5.0};
  DenseMatrix outer = DenseMatrix::OuterProduct(x, y);
  EXPECT_DOUBLE_EQ(outer(1, 2), 10.0);
  DenseMatrix m(2, 3);
  m.AddOuterProduct(2.0, x, y);
  EXPECT_DOUBLE_EQ(m(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 16.0);
}

TEST(DenseMatrixTest, MultiplyVector) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Vector x{1.0, 0.0, -1.0};
  Vector y = a.Multiply(x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  Vector z{1.0, 1.0};
  Vector t = a.MultiplyTranspose(z);
  EXPECT_DOUBLE_EQ(t[0], 5.0);
  EXPECT_DOUBLE_EQ(t[2], 9.0);
}

TEST(DenseMatrixTest, SymmetryAndNonZeroCounts) {
  DenseMatrix m = DenseMatrix::FromRows({{1, 2}, {2, 1}});
  EXPECT_TRUE(m.IsSymmetric());
  m(0, 1) = 2.5;
  EXPECT_FALSE(m.IsSymmetric(1e-9));
  EXPECT_EQ(m.CountNonZero(), 4u);
}

TEST(CsrMatrixTest, FromTripletsCoalescesDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0}, {0, 1, 2.0}, {2, 0, 5.0}, {1, 2, -1.0}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  Rng rng(11);
  std::vector<std::tuple<std::int32_t, std::int32_t, double>> triplets;
  for (int k = 0; k < 40; ++k) {
    triplets.emplace_back(static_cast<std::int32_t>(rng.NextBounded(8)),
                          static_cast<std::int32_t>(rng.NextBounded(8)),
                          rng.NextGaussian());
  }
  CsrMatrix sparse = CsrMatrix::FromTriplets(8, 8, triplets);
  DenseMatrix dense = sparse.ToDense();
  Vector x(8);
  for (std::size_t i = 0; i < 8; ++i) x[i] = rng.NextGaussian();
  EXPECT_LT(MaxAbsDiff(sparse.Multiply(x), dense.Multiply(x)), 1e-12);
  EXPECT_LT(MaxAbsDiff(sparse.MultiplyTranspose(x), dense.MultiplyTranspose(x)),
            1e-12);
  DenseMatrix b = RandomMatrix(8, 6, &rng);
  EXPECT_LT(MaxAbsDiff(sparse.MultiplyDense(b), Multiply(dense, b)), 1e-12);
}

TEST(DynamicRowMatrixTest, SetRowAndMutation) {
  DynamicRowMatrix m(3, 4);
  m.SetRow(1, {{0, 0.5}, {3, 0.5}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.At(1, 3), 0.5);
  m.SetRow(1, {{2, 1.0}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.At(1, 3), 0.0);
  m.ClearRow(1);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(DynamicRowMatrixTest, CsrSnapshotMatches) {
  DynamicRowMatrix m(3, 3);
  m.SetRow(0, {{1, 2.0}});
  m.SetRow(2, {{0, -1.0}, {2, 4.0}});
  CsrMatrix csr = m.ToCsr();
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_EQ(MaxAbsDiff(csr.ToDense(), m.ToDense()), 0.0);
}

TEST(DynamicRowMatrixTest, RowDotAndSparseRow) {
  DynamicRowMatrix m(2, 4);
  m.SetRow(0, {{1, 2.0}, {3, -1.0}});
  Vector x{1.0, 10.0, 100.0, 1000.0};
  EXPECT_DOUBLE_EQ(m.RowDot(0, x), -980.0);
  SparseVector row = m.RowAsSparseVector(0);
  EXPECT_EQ(row.nnz(), 2u);
  EXPECT_DOUBLE_EQ(row.At(3), -1.0);
}

TEST(DynamicRowMatrixTest, GrowPreservesContents) {
  DynamicRowMatrix m(2, 2);
  m.SetRow(0, {{1, 3.0}});
  m.Grow(4, 5);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.0);
  m.SetRow(3, {{4, 1.0}});
  EXPECT_DOUBLE_EQ(m.At(3, 4), 1.0);
}

TEST(LuTest, SolvesKnownSystem) {
  DenseMatrix a = DenseMatrix::FromRows({{2, 1}, {1, 3}});
  auto lu = LuFactorization::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->Solve(Vector{5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
  EXPECT_NEAR(lu->Determinant(), 5.0, 1e-12);
}

TEST(LuTest, RandomRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    DenseMatrix a = RandomMatrix(12, 12, &rng);
    Vector x_true(12);
    for (std::size_t i = 0; i < 12; ++i) x_true[i] = rng.NextGaussian();
    Vector b = a.Multiply(x_true);
    auto lu = LuFactorization::Compute(a);
    ASSERT_TRUE(lu.ok());
    auto x = lu->Solve(b);
    ASSERT_TRUE(x.ok());
    EXPECT_LT(MaxAbsDiff(x.value(), x_true), 1e-9);
  }
}

TEST(LuTest, SingularIsRejected) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {2, 4}});
  auto lu = LuFactorization::Compute(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LuTest, NonSquareIsRejected) {
  DenseMatrix a(2, 3);
  EXPECT_EQ(LuFactorization::Compute(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KronTest, MatchesDefinition) {
  DenseMatrix a = DenseMatrix::FromRows({{1, 2}, {3, 4}});
  DenseMatrix b = DenseMatrix::FromRows({{0, 5}, {6, 7}});
  DenseMatrix k = Kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);    // a00*b01
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);    // a00*b10
  EXPECT_DOUBLE_EQ(k(3, 2), 4.0 * 6.0);
}

TEST(KronTest, VecIdentityHolds) {
  // vec(A·X·B) = (Bᵀ ⊗ A)·vec(X).
  Rng rng(5);
  DenseMatrix a = RandomMatrix(3, 3, &rng);
  DenseMatrix x = RandomMatrix(3, 4, &rng);
  DenseMatrix b = RandomMatrix(4, 4, &rng);
  Vector lhs = Vec(Multiply(Multiply(a, x), b));
  Vector rhs = Kron(b.Transpose(), a).Multiply(Vec(x));
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-12);
}

TEST(KronTest, UnvecRoundTrip) {
  Rng rng(9);
  DenseMatrix x = RandomMatrix(4, 3, &rng);
  EXPECT_EQ(MaxAbsDiff(Unvec(Vec(x), 4, 3), x), 0.0);
}

TEST(SylvesterTest, FixedPointAndKronAgree) {
  Rng rng(13);
  DenseMatrix w = RandomMatrix(5, 5, &rng);
  // Scale W so the iteration is a contraction.
  w.Scale(0.3 / (w.MaxAbs() * 5.0 + 1e-9));
  DenseMatrix c0 = RandomMatrix(5, 5, &rng);
  auto fixed = SolveSylvesterFixedPoint(0.8, w, w, c0, {.iterations = 200});
  auto direct = SolveSylvesterKron(0.8, w, w, c0);
  ASSERT_TRUE(fixed.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_LT(MaxAbsDiff(fixed.value(), direct.value()), 1e-10);
  // Both satisfy the equation X = c·W·X·Wᵀ + C0.
  DenseMatrix residual = Multiply(Multiply(w, direct.value()), w.Transpose());
  residual.Scale(0.8);
  residual.AddScaled(1.0, c0);
  EXPECT_LT(MaxAbsDiff(residual, direct.value()), 1e-10);
}

TEST(SylvesterTest, DivergenceIsDetected) {
  DenseMatrix w = DenseMatrix::FromRows({{2.0, 0.0}, {0.0, 2.0}});
  DenseMatrix c0 = DenseMatrix::Identity(2);
  auto result = SolveSylvesterFixedPoint(1.0, w, w, c0, {.iterations = 100});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SylvesterTest, ShapeMismatchIsRejected) {
  DenseMatrix w(3, 3);
  DenseMatrix c0(2, 3);
  EXPECT_FALSE(SolveSylvesterFixedPoint(0.5, w, w, c0).ok());
  EXPECT_FALSE(SolveSylvesterKron(0.5, w, w, c0).ok());
}

}  // namespace
}  // namespace incsr::la
