// End-to-end integration tests: replay dataset snapshot series through the
// full public API, cross-checking every algorithm family against the
// others — the closest thing to the paper's experimental pipeline that can
// run inside the unit-test budget.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "datasets/datasets.h"
#include "eval/metrics.h"
#include "incsvd/inc_svd.h"
#include "incsr/incsr.h"
#include "simrank/batch_matrix_parallel.h"

namespace incsr {
namespace {

using core::DynamicSimRank;
using core::UpdateAlgorithm;
using simrank::SimRankOptions;

SimRankOptions Converged(double damping = 0.6) {
  SimRankOptions options;
  options.damping = damping;
  options.iterations =
      static_cast<int>(std::log(1e-13) / std::log(damping)) + 2;
  return options;
}

class SnapshotReplay
    : public ::testing::TestWithParam<datasets::DatasetKind> {};

TEST_P(SnapshotReplay, IncrementalIndexTracksBatchAcrossSnapshots) {
  datasets::DatasetOptions data_options;
  data_options.scale = 0.008;  // small enough for converged batch checks
  data_options.num_snapshots = 3;
  auto series = datasets::MakeDataset(GetParam(), data_options);
  ASSERT_TRUE(series.ok());

  SimRankOptions options = Converged();
  auto index = DynamicSimRank::Create(series->GraphAt(0), options);
  ASSERT_TRUE(index.ok());

  for (std::size_t snap = 1; snap < series->num_snapshots(); ++snap) {
    auto delta = series->DeltaBetween(snap - 1, snap);
    ASSERT_TRUE(index->ApplyBatch(delta).ok());
    la::DenseMatrix expected =
        simrank::BatchMatrix(series->GraphAt(snap), options);
    EXPECT_LT(la::MaxAbsDiff(index->scores(), expected), 1e-7)
        << datasets::DatasetName(GetParam()) << " snapshot " << snap;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, SnapshotReplay,
                         ::testing::Values(datasets::DatasetKind::kDblp,
                                           datasets::DatasetKind::kCitH,
                                           datasets::DatasetKind::kYouTu));

TEST(Integration, AllBatchAlgorithmsAgreeOnIterativeForm) {
  // Naive and partial-sums compute the same (iterative-form) scores.
  auto series = datasets::MakeDataset(
      datasets::DatasetKind::kDblp, {.scale = 0.005, .num_snapshots = 1});
  ASSERT_TRUE(series.ok());
  auto g = series->GraphAt(0);
  SimRankOptions options;
  options.iterations = 10;
  EXPECT_LT(la::MaxAbsDiff(simrank::BatchNaive(g, options),
                           simrank::BatchPartialSums(g, options)),
            1e-11);
}

TEST(Integration, ParallelBatchMatchesSerial) {
  auto series = datasets::MakeDataset(
      datasets::DatasetKind::kCitH, {.scale = 0.01, .num_snapshots = 1});
  ASSERT_TRUE(series.ok());
  auto g = series->GraphAt(0);
  SimRankOptions options;
  options.iterations = 12;
  la::DenseMatrix serial = simrank::BatchMatrix(g, options);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
    la::DenseMatrix parallel =
        simrank::BatchMatrixParallel(g, options, threads);
    EXPECT_LT(la::MaxAbsDiff(serial, parallel), 1e-12)
        << "threads = " << threads;
  }
}

TEST(Integration, IncSvdTracksButDoesNotMatchTruthOnRealisticGraphs) {
  // The full pipeline of the paper's comparison: both our Inc-SR and the
  // Inc-SVD baseline absorb the same delta; ours matches the batch truth,
  // the baseline ranks well below it on NDCG.
  auto series = datasets::MakeDataset(
      datasets::DatasetKind::kDblp, {.scale = 0.01, .num_snapshots = 2});
  ASSERT_TRUE(series.ok());
  auto g_old = series->GraphAt(0);
  auto delta = series->DeltaBetween(0, 1);
  SimRankOptions options = Converged();

  auto ours = DynamicSimRank::Create(g_old, options);
  ASSERT_TRUE(ours.ok());
  ASSERT_TRUE(ours->ApplyBatch(delta).ok());

  incsvd::IncSvdOptions svd_options;
  svd_options.simrank = options;
  svd_options.target_rank = 10;
  auto baseline = incsvd::IncSvd::Create(g_old, svd_options);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline->ApplyBatch(delta).ok());
  auto baseline_scores = baseline->ComputeScores();
  ASSERT_TRUE(baseline_scores.ok());

  la::DenseMatrix truth = simrank::BatchMatrix(series->GraphAt(1), options);
  auto ours_ndcg = eval::NdcgAtK(ours->scores().ToDense(), truth, 30);
  auto base_ndcg = eval::NdcgAtK(baseline_scores.value(), truth, 30);
  ASSERT_TRUE(ours_ndcg.ok());
  ASSERT_TRUE(base_ndcg.ok());
  EXPECT_GT(ours_ndcg.value(), 0.999);
  EXPECT_LT(la::MaxAbsDiff(ours->scores(), truth), 1e-7);
  EXPECT_LT(base_ndcg.value(), ours_ndcg.value());
}

TEST(Integration, InsertDeleteRoundTripAcrossAlgorithms) {
  // Applying a delta and then its inverse returns both engines to the
  // starting scores (exactness in both update directions).
  auto series = datasets::MakeDataset(
      datasets::DatasetKind::kYouTu, {.scale = 0.002, .num_snapshots = 2});
  ASSERT_TRUE(series.ok());
  auto g = series->GraphAt(0);
  SimRankOptions options = Converged();

  for (auto algorithm :
       {UpdateAlgorithm::kIncSR, UpdateAlgorithm::kIncUSR}) {
    auto index = DynamicSimRank::Create(g, options, algorithm);
    ASSERT_TRUE(index.ok());
    la::DenseMatrix before = index->scores().ToDense();

    auto delta = series->DeltaBetween(0, 1);
    ASSERT_TRUE(index->ApplyBatch(delta).ok());
    std::vector<graph::EdgeUpdate> inverse;
    for (auto it = delta.rbegin(); it != delta.rend(); ++it) {
      inverse.push_back({it->kind == graph::UpdateKind::kInsert
                             ? graph::UpdateKind::kDelete
                             : graph::UpdateKind::kInsert,
                         it->src, it->dst});
    }
    ASSERT_TRUE(index->ApplyBatch(inverse).ok());
    EXPECT_LT(la::MaxAbsDiff(index->scores(), before), 1e-8);
    EXPECT_EQ(index->graph().Edges(), g.Edges());
  }
}

TEST(Integration, EdgeListRoundTripFeedsTheIndex) {
  // Write a generated graph to SNAP format, read it back, index it, and
  // verify scores agree with indexing the original.
  auto stream = graph::ErdosRenyiGnm(40, 160, 3);
  ASSERT_TRUE(stream.ok());
  auto g = graph::MaterializeGraph(40, stream.value());
  std::string path = "/tmp/incsr_integration_edges.txt";
  ASSERT_TRUE(graph::WriteEdgeListFile(g, path).ok());
  graph::EdgeListOptions io_options;
  io_options.remap_ids = false;
  auto loaded = graph::ReadEdgeListFile(path, io_options);
  ASSERT_TRUE(loaded.ok());

  SimRankOptions options;
  options.iterations = 20;
  EXPECT_LT(la::MaxAbsDiff(simrank::BatchMatrix(g, options),
                           simrank::BatchMatrix(loaded->graph, options)),
            0.0 + 1e-15);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace incsr
