// Loopback tests for the binary-RPC server (src/net/server.*) and client
// library (src/net/client.*): every query RPC must return BITWISE the
// value the in-process service serves (doubles cross as IEEE-754 bits —
// the wire adds no rounding), reject-mode backpressure must surface as
// RpcStatus kOverloaded instead of a hang, and malformed frames against a
// LIVE server — oversized length prefixes, unknown tags, wrong versions,
// undecodable bodies, random garbage — must leave the server serving
// other connections. TSan-clean; CI runs it under -fsanitize=thread.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "graph/generators.h"
#include "graph/update_stream.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/simrank_service.h"

namespace incsr::net {
namespace {

using core::DynamicSimRank;
using core::ScoredPair;
using graph::DynamicDiGraph;
using graph::EdgeUpdate;
using graph::UpdateKind;

simrank::SimRankOptions Converged() {
  simrank::SimRankOptions options;
  options.iterations = 30;
  return options;
}

DynamicDiGraph TestGraph(std::uint64_t seed = 3, std::size_t n = 16,
                         std::size_t m = 40) {
  auto stream = graph::ErdosRenyiGnm(n, m, seed);
  INCSR_CHECK(stream.ok(), "generator");
  return graph::MaterializeGraph(n, stream.value());
}

std::unique_ptr<service::SimRankService> MakeService(
    const DynamicDiGraph& graph, service::ServiceOptions options = {}) {
  auto index = DynamicSimRank::Create(graph, Converged());
  INCSR_CHECK(index.ok(), "index build");
  auto service =
      service::SimRankService::Create(std::move(index).value(), options);
  INCSR_CHECK(service.ok(), "service build");
  return std::move(service).value();
}

IncSrClient MustConnect(const IncSrServer& server) {
  auto client = IncSrClient::Connect(server.host(), server.port());
  INCSR_CHECK(client.ok(), "connect: %s", client.status().ToString().c_str());
  return std::move(client).value();
}

// The headline acceptance test: every query answered over the wire equals
// the in-process answer BITWISE — same doubles, same ids, same order.
TEST(IncSrServer, QueriesOverTheWireAreBitwiseIdenticalToInProcess) {
  DynamicDiGraph graph = TestGraph(7);
  auto service = MakeService(graph);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  IncSrClient client = MustConnect(**server);

  const auto n = static_cast<graph::NodeId>(graph.num_nodes());
  for (graph::NodeId a = 0; a < n; ++a) {
    for (graph::NodeId b = 0; b < n; ++b) {
      auto wire_score = client.Score(a, b);
      auto local_score = service->Score(a, b);
      ASSERT_TRUE(wire_score.ok());
      ASSERT_TRUE(local_score.ok());
      EXPECT_EQ(std::bit_cast<std::uint64_t>(*wire_score),
                std::bit_cast<std::uint64_t>(*local_score))
          << "pair (" << a << ", " << b << ")";
    }
    auto wire_topk = client.TopKFor(a, 5);
    auto local_topk = service->TopKFor(a, 5);
    ASSERT_TRUE(wire_topk.ok());
    ASSERT_TRUE(local_topk.ok());
    EXPECT_EQ(*wire_topk, *local_topk) << "TopKFor(" << a << ")";
  }
  auto wire_pairs = client.TopKPairs(10);
  ASSERT_TRUE(wire_pairs.ok());
  EXPECT_EQ(*wire_pairs, service->TopKPairs(10));
}

// ...and the identity must survive ingest through the same wire: submit,
// flush, re-compare (covers the snapshot the applier published, not just
// the boot-time epoch).
TEST(IncSrServer, IdentityHoldsAfterOverTheWireIngest) {
  DynamicDiGraph graph = TestGraph(11);
  auto service = MakeService(graph);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok());
  IncSrClient client = MustConnect(**server);

  Rng rng(5);
  auto inserts = graph::SampleInsertions(graph, 6, &rng);
  ASSERT_TRUE(inserts.ok());
  auto deletions = graph::SampleDeletions(graph, 3, &rng);
  ASSERT_TRUE(deletions.ok());
  std::vector<EdgeUpdate> updates = inserts.value();
  updates.insert(updates.end(), deletions->begin(), deletions->end());

  auto submit = client.Submit(updates);
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit->status, wire::RpcStatus::kOk);
  EXPECT_EQ(submit->accepted, updates.size());
  EXPECT_EQ(submit->rejected, 0u);
  ASSERT_TRUE(client.Flush().ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->stats.epoch, 1u);
  EXPECT_EQ(stats->stats.applied, updates.size());
  EXPECT_FALSE(stats->is_replica);
  EXPECT_EQ(stats->num_nodes, graph.num_nodes());

  const auto n = static_cast<graph::NodeId>(graph.num_nodes());
  for (graph::NodeId a = 0; a < n; ++a) {
    auto wire_topk = client.TopKFor(a, 8);
    auto local_topk = service->TopKFor(a, 8);
    ASSERT_TRUE(wire_topk.ok());
    ASSERT_TRUE(local_topk.ok());
    EXPECT_EQ(*wire_topk, *local_topk);
  }
}

// Suggest = bulk TopKFor in one round trip; per-node lists must match the
// one-at-a-time RPC, out-of-range nodes answer found=false and flip the
// overall status to kInvalid without poisoning the valid entries.
TEST(IncSrServer, SuggestMatchesTopKForAndFlagsBadNodes) {
  DynamicDiGraph graph = TestGraph(13);
  auto service = MakeService(graph);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok());
  IncSrClient client = MustConnect(**server);

  auto suggest = client.Suggest(4, {0, 3, 7});
  ASSERT_TRUE(suggest.ok());
  EXPECT_EQ(suggest->status, wire::RpcStatus::kOk);
  ASSERT_EQ(suggest->suggestions.size(), 3u);
  for (const auto& entry : suggest->suggestions) {
    EXPECT_TRUE(entry.found);
    auto direct = client.TopKFor(entry.node, 4);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(entry.entries, *direct);
  }

  auto mixed = client.Suggest(4, {1, 999});
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->status, wire::RpcStatus::kInvalid);
  ASSERT_EQ(mixed->suggestions.size(), 2u);
  EXPECT_TRUE(mixed->suggestions[0].found);
  EXPECT_FALSE(mixed->suggestions[1].found);
  EXPECT_TRUE(mixed->suggestions[1].entries.empty());
}

// Acceptance criterion: a full queue in reject mode answers kOverloaded —
// it must NOT block the connection. queue_capacity 1 with a 256-update
// RPC: the applier cannot finish an apply/publish cycle between two
// sub-microsecond enqueues, so some of the batch is always refused.
TEST(IncSrServer, RejectModeSurfacesOverloadedNotAHang) {
  DynamicDiGraph graph = TestGraph(17, 24, 60);
  service::ServiceOptions options;
  options.queue_capacity = 1;
  options.backpressure = service::BackpressurePolicy::kReject;
  auto service = MakeService(graph, options);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok());
  IncSrClient client = MustConnect(**server);

  Rng rng(23);
  std::vector<EdgeUpdate> updates;
  for (int i = 0; i < 256; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.NextBounded(24));
    auto dst = static_cast<graph::NodeId>(rng.NextBounded(24));
    if (dst == src) dst = static_cast<graph::NodeId>((dst + 1) % 24);
    updates.push_back({UpdateKind::kInsert, src, dst});
  }
  auto submit = client.Submit(updates);
  ASSERT_TRUE(submit.ok()) << submit.status().ToString();
  EXPECT_EQ(submit->status, wire::RpcStatus::kOverloaded);
  EXPECT_GT(submit->rejected, 0u);
  EXPECT_EQ(submit->accepted + submit->rejected, updates.size());

  // The connection survived the rejection and keeps serving.
  EXPECT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Flush().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  // The server short-circuits a batch at the first queue refusal, so the
  // service-side counter sees only that one; the RPC's `rejected` covers
  // the skipped remainder too.
  EXPECT_GE(stats->stats.rejected, 1u);
  EXPECT_LE(stats->stats.rejected, submit->rejected);
}

// ---- Malformed frames against a live server --------------------------------

std::string LengthPrefix(std::uint32_t len) {
  std::string prefix(4, '\0');
  for (int i = 0; i < 4; ++i) {
    prefix[static_cast<std::size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xFF);
  }
  return prefix;
}

Socket MustConnectRaw(const IncSrServer& server) {
  auto socket = ConnectTo(server.host(), server.port(), 2000);
  INCSR_CHECK(socket.ok(), "raw connect: %s",
              socket.status().ToString().c_str());
  return std::move(socket).value();
}

TEST(IncSrServer, OversizedLengthPrefixClosesConnectionOnly) {
  DynamicDiGraph graph = TestGraph();
  auto service = MakeService(graph);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok());

  {
    Socket raw = MustConnectRaw(**server);
    // Announce a 4 GiB frame: the server must close without allocating.
    ASSERT_TRUE(WriteAll(raw.fd(), LengthPrefix(0xFFFFFFFFu)).ok());
    EXPECT_FALSE(ReadFrame(raw.fd(), wire::kMaxFramePayload).ok());
  }
  {
    Socket raw = MustConnectRaw(**server);
    // A zero-length frame (no room for version + tag) is equally fatal.
    ASSERT_TRUE(WriteAll(raw.fd(), LengthPrefix(0)).ok());
    EXPECT_FALSE(ReadFrame(raw.fd(), wire::kMaxFramePayload).ok());
  }

  // Other connections are unaffected.
  IncSrClient client = MustConnect(**server);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE((*server)->stats().protocol_errors, 2u);
}

TEST(IncSrServer, UnknownTagAndBadVersionAnswerErrorAndKeepServing) {
  DynamicDiGraph graph = TestGraph();
  auto service = MakeService(graph);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok());
  Socket raw = MustConnectRaw(**server);

  // Unknown tag 0x42 under the right version.
  std::string unknown_tag = LengthPrefix(2);
  unknown_tag.push_back(static_cast<char>(wire::kWireVersion));
  unknown_tag.push_back('\x42');
  ASSERT_TRUE(WriteAll(raw.fd(), unknown_tag).ok());
  auto reply = ReadFrame(raw.fd(), wire::kMaxFramePayload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tag, wire::MessageTag::kErrorResponse);
  wire::ErrorResponse error;
  ASSERT_TRUE(wire::ErrorResponse::DecodeBody(reply->body, &error));
  EXPECT_EQ(error.status, wire::RpcStatus::kInvalid);

  // Wrong version byte.
  std::string bad_version = LengthPrefix(2);
  bad_version.push_back(static_cast<char>(wire::kWireVersion + 9));
  bad_version.push_back(
      static_cast<char>(wire::MessageTag::kPingRequest));
  ASSERT_TRUE(WriteAll(raw.fd(), bad_version).ok());
  reply = ReadFrame(raw.fd(), wire::kMaxFramePayload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->tag, wire::MessageTag::kErrorResponse);

  // Undecodable body: a ScoreRequest frame with a truncated body.
  std::string bad_body = LengthPrefix(2 + 3);
  bad_body.push_back(static_cast<char>(wire::kWireVersion));
  bad_body.push_back(static_cast<char>(wire::MessageTag::kScoreRequest));
  bad_body.append("\x01\x02\x03", 3);  // ScoreRequest needs 8 bytes
  ASSERT_TRUE(WriteAll(raw.fd(), bad_body).ok());
  reply = ReadFrame(raw.fd(), wire::kMaxFramePayload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->tag, wire::MessageTag::kErrorResponse);

  // The SAME connection still answers a well-formed request after three
  // protocol errors — errors are per-frame, not connection-fatal.
  ASSERT_TRUE(WriteFrame(raw.fd(), wire::MessageTag::kPingRequest, "").ok());
  reply = ReadFrame(raw.fd(), wire::kMaxFramePayload);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->tag, wire::MessageTag::kPingResponse);
}

TEST(IncSrServer, RandomGarbageNeverKillsTheServer) {
  DynamicDiGraph graph = TestGraph();
  auto service = MakeService(graph);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok());

  Rng rng(20140406);
  for (int round = 0; round < 20; ++round) {
    Socket raw = MustConnectRaw(**server);
    const std::size_t size = 1 + rng.NextBounded(64);
    std::string garbage(size, '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(rng.NextBounded(256));
    }
    // Ignore the write status: the server may already have closed on a
    // hostile prefix mid-stream, which is exactly the defensive behavior.
    (void)WriteAll(raw.fd(), garbage);
  }

  // After 20 garbage connections the server still serves correct answers.
  IncSrClient client = MustConnect(**server);
  EXPECT_TRUE(client.Ping().ok());
  auto score = client.Score(0, 1);
  auto local = service->Score(0, 1);
  ASSERT_TRUE(score.ok());
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(*score),
            std::bit_cast<std::uint64_t>(*local));
}

TEST(IncSrServer, StopClosesConnectionsAndFurtherRpcsFailCleanly) {
  DynamicDiGraph graph = TestGraph();
  auto service = MakeService(graph);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok());
  IncSrClient client = MustConnect(**server);
  ASSERT_TRUE(client.Ping().ok());

  (*server)->Stop();
  EXPECT_FALSE(client.Ping().ok());
  EXPECT_FALSE(client.connected());
  // Stop is idempotent.
  (*server)->Stop();
}

TEST(IncSrServer, ClientRejectsOutOfRangeQueriesServerSide) {
  DynamicDiGraph graph = TestGraph();
  auto service = MakeService(graph);
  auto server = IncSrServer::Serve(service.get());
  ASSERT_TRUE(server.ok());
  IncSrClient client = MustConnect(**server);

  // Out-of-range collapses onto the wire's kInvalid and surfaces as
  // InvalidArgument on the client — fine-grained codes don't cross.
  EXPECT_EQ(client.Score(-1, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client.TopKFor(999, 3).status().code(),
            StatusCode::kInvalidArgument);
  // The connection survives an invalid query.
  EXPECT_TRUE(client.Ping().ok());
}

}  // namespace
}  // namespace incsr::net
