// Tests for the copy-on-write row-sharded ScoreStore and its integration
// with the incremental engines:
//   - COW mechanics: publishes are pointer-table bumps, first post-publish
//     write clones exactly the touched shard, pinned views stay bitwise
//     stable, copy accounting matches.
//   - Bitwise engine equivalence: for EVERY UpdateAlgorithm (and the
//     coalesced batch path) a mixed insert/delete stream applied through a
//     ScoreStore — with epoch publishes and pinned views interleaved to
//     force COW — produces a matrix bitwise identical to the same stream
//     applied through a plain DenseMatrix.
//   - Concurrency: a pinned view stays byte-stable while a writer thread
//     COWs rows and republishes. The suite is TSan-clean; CI runs it under
//     -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/coalesced_update.h"
#include "core/dynamic_simrank.h"
#include "core/inc_sr.h"
#include "core/inc_usr.h"
#include "graph/generators.h"
#include "graph/transition.h"
#include "graph/update_stream.h"
#include "la/score_store.h"
#include "simrank/batch_matrix.h"

namespace incsr::la {
namespace {

DenseMatrix TestMatrix(std::size_t rows, std::size_t cols,
                       std::uint64_t seed = 7) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = m.RowPtr(i);
    for (std::size_t j = 0; j < cols; ++j) row[j] = rng.NextDouble();
  }
  return m;
}

TEST(ScoreStore, RoundTripsDenseContent) {
  DenseMatrix dense = TestMatrix(9, 9);
  ScoreStore store(dense);
  EXPECT_EQ(store.rows(), 9u);
  EXPECT_EQ(store.cols(), 9u);
  EXPECT_TRUE(BitwiseEqual(store.ToDense(), dense));
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(store(i, j), dense(i, j));
    }
  }
  // Column reads match the dense column.
  Vector col = store.Col(3);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(col[i], dense(i, 3));
  EXPECT_EQ(MaxAbsDiff(store, dense), 0.0);
}

TEST(ScoreStore, WritesWithoutPublishNeverCopy) {
  ScoreStore store(TestMatrix(8, 8));
  for (std::size_t i = 0; i < 8; ++i) store.MutableRowPtr(i)[0] = 1.5;
  EXPECT_EQ(store.stats().rows_copied, 0u);
  EXPECT_EQ(store.stats().bytes_copied, 0u);
  EXPECT_EQ(store(7, 0), 1.5);
}

TEST(ScoreStore, PublishThenWriteCopiesExactlyTouchedRows) {
  const std::size_t n = 16;
  ScoreStore store(TestMatrix(n, n));
  ScoreStore::View view = store.Publish();
  EXPECT_EQ(store.stats().publishes, 1u);
  EXPECT_EQ(store.stats().rows_copied, 0u);  // publishing copies nothing

  store.MutableRowPtr(3)[5] = 42.0;
  store.MutableRowPtr(3)[6] = 43.0;  // same row again: no second copy
  store.MutableRowPtr(9)[0] = 44.0;
  EXPECT_EQ(store.stats().rows_copied, 2u);
  EXPECT_EQ(store.stats().bytes_copied, 2u * n * sizeof(double));

  // The store sees the writes; the pinned view still serves the old bytes.
  EXPECT_EQ(store(3, 5), 42.0);
  EXPECT_NE(view(3, 5), 42.0);
  EXPECT_NE(view(9, 0), 44.0);

  // Untouched rows are physically shared between store and view.
  EXPECT_EQ(store.RowPtr(0), view.RowPtr(0));
  EXPECT_NE(store.RowPtr(3), view.RowPtr(3));
}

TEST(ScoreStore, PinnedViewIsImmutableAcrossManyEpochs) {
  const std::size_t n = 12;
  DenseMatrix initial = TestMatrix(n, n);
  ScoreStore store(initial);
  ScoreStore::View pinned = store.Publish();
  DenseMatrix pinned_bytes = pinned.ToDense();

  Rng rng(3);
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int w = 0; w < 5; ++w) {
      const auto i = static_cast<std::size_t>(rng.NextBounded(n));
      const auto j = static_cast<std::size_t>(rng.NextBounded(n));
      store.MutableRowPtr(i)[j] = rng.NextDouble();
    }
    ScoreStore::View latest = store.Publish();
    EXPECT_TRUE(BitwiseEqual(latest.ToDense(), store.ToDense()));
  }
  EXPECT_TRUE(BitwiseEqual(pinned.ToDense(), pinned_bytes));
  EXPECT_TRUE(BitwiseEqual(pinned_bytes, initial));
}

TEST(ScoreStore, MultiRowShardsCopyAtShardGranularity) {
  const std::size_t n = 10;
  ScoreStore store(TestMatrix(n, n), /*rows_per_shard=*/4);
  EXPECT_EQ(store.rows_per_shard(), 4u);
  ScoreStore::View view = store.Publish();
  store.MutableRowPtr(5)[0] = 1.0;  // shard {4,5,6,7}
  EXPECT_EQ(store.stats().rows_copied, 4u);
  store.MutableRowPtr(9)[0] = 1.0;  // tail shard {8,9} has only 2 rows
  EXPECT_EQ(store.stats().rows_copied, 6u);
  EXPECT_TRUE(BitwiseEqual(view.ToDense(), ScoreStore(TestMatrix(n, n))
                                               .ToDense()));
}

TEST(ScoreStore, AssignRebuildsGeometryAndOldViewsSurvive) {
  ScoreStore store(TestMatrix(6, 6));
  ScoreStore::View old_view = store.Publish();
  DenseMatrix old_bytes = old_view.ToDense();

  store.Assign(TestMatrix(8, 8, /*seed=*/99));
  EXPECT_EQ(store.rows(), 8u);
  store.MutableRowPtr(7)[7] = -1.0;  // fresh shards are unshared: no copy
  EXPECT_EQ(store.stats().rows_copied, 0u);

  EXPECT_EQ(old_view.rows(), 6u);
  EXPECT_TRUE(BitwiseEqual(old_view.ToDense(), old_bytes));
}

// ---- Bitwise engine equivalence ------------------------------------------

// Mixed insert/delete stream where every edge appears once, so it is valid
// in any order and against both replicas.
std::vector<graph::EdgeUpdate> MixedStream(const graph::DynamicDiGraph& graph,
                                           std::size_t inserts,
                                           std::size_t deletes,
                                           std::uint64_t seed) {
  Rng rng(seed);
  auto ins = graph::SampleInsertions(graph, inserts, &rng);
  auto del = graph::SampleDeletions(graph, deletes, &rng);
  INCSR_CHECK(ins.ok() && del.ok(), "sampling failed");
  std::vector<graph::EdgeUpdate> stream;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < ins->size() || b < del->size()) {  // deterministic interleave
    if (a < ins->size()) stream.push_back((*ins)[a++]);
    if (b < del->size()) stream.push_back((*del)[b++]);
  }
  return stream;
}

// Applies `stream` twice — once against a DenseMatrix, once against a
// ScoreStore that publishes an epoch (and pins the view) after every
// update to force maximal COW — and requires bitwise-identical results
// after every single update.
template <typename ApplyFn>
void ExpectBitwiseEquivalence(const graph::DynamicDiGraph& graph,
                              const simrank::SimRankOptions& options,
                              const std::vector<graph::EdgeUpdate>& stream,
                              ApplyFn&& apply) {
  graph::DynamicDiGraph g_dense = graph;
  graph::DynamicDiGraph g_store = graph;
  la::DynamicRowMatrix q_dense = graph::BuildTransition(g_dense);
  la::DynamicRowMatrix q_store = graph::BuildTransition(g_store);
  DenseMatrix s_dense = simrank::BatchMatrix(graph, options);
  ScoreStore s_store((DenseMatrix(s_dense)));

  std::vector<ScoreStore::View> pinned;
  pinned.push_back(s_store.Publish());
  for (std::size_t k = 0; k < stream.size(); ++k) {
    ASSERT_TRUE(apply(stream[k], &g_dense, &q_dense, &s_dense).ok())
        << "dense path failed at update " << k;
    ASSERT_TRUE(apply(stream[k], &g_store, &q_store, &s_store).ok())
        << "store path failed at update " << k;
    ASSERT_TRUE(BitwiseEqual(s_dense, s_store.ToDense()))
        << "bitwise divergence after update " << k;
    pinned.push_back(s_store.Publish());  // force COW on the next update
  }
  EXPECT_GT(s_store.stats().rows_copied, 0u);
}

simrank::SimRankOptions EngineOptions() {
  simrank::SimRankOptions options;
  options.damping = 0.6;
  options.iterations = 10;
  return options;
}

TEST(ScoreStoreEngineEquivalence, IncSrUnitUpdatesAreBitwiseIdentical) {
  auto stream_seed = graph::ErdosRenyiGnm(20, 60, 5);
  ASSERT_TRUE(stream_seed.ok());
  auto graph = graph::MaterializeGraph(20, stream_seed.value());
  auto updates = MixedStream(graph, 10, 6, 17);

  core::IncSrEngine dense_engine(EngineOptions());
  core::IncSrEngine store_engine(EngineOptions());
  ExpectBitwiseEquivalence(
      graph, EngineOptions(), updates,
      [&](const graph::EdgeUpdate& u, graph::DynamicDiGraph* g,
          la::DynamicRowMatrix* q, auto* s) {
        if constexpr (std::is_same_v<std::remove_pointer_t<decltype(s)>,
                                     DenseMatrix>) {
          return dense_engine.ApplyUpdate(u, g, q, s);
        } else {
          return store_engine.ApplyUpdate(u, g, q, s);
        }
      });
}

TEST(ScoreStoreEngineEquivalence, IncUsrUnitUpdatesAreBitwiseIdentical) {
  auto stream_seed = graph::ErdosRenyiGnm(14, 40, 9);
  ASSERT_TRUE(stream_seed.ok());
  auto graph = graph::MaterializeGraph(14, stream_seed.value());
  auto updates = MixedStream(graph, 6, 4, 23);

  ExpectBitwiseEquivalence(
      graph, EngineOptions(), updates,
      [&](const graph::EdgeUpdate& u, graph::DynamicDiGraph* g,
          la::DynamicRowMatrix* q, auto* s) {
        return core::IncUsrApplyUpdate(u, EngineOptions(), g, q, s);
      });
}

TEST(ScoreStoreEngineEquivalence, CoalescedBatchesAreBitwiseIdentical) {
  auto stream_seed = graph::ErdosRenyiGnm(18, 50, 13);
  ASSERT_TRUE(stream_seed.ok());
  auto graph = graph::MaterializeGraph(18, stream_seed.value());
  auto updates = MixedStream(graph, 12, 6, 29);

  core::CoalescedBatchEngine dense_engine(EngineOptions());
  core::CoalescedBatchEngine store_engine(EngineOptions());

  graph::DynamicDiGraph g_dense = graph;
  graph::DynamicDiGraph g_store = graph;
  la::DynamicRowMatrix q_dense = graph::BuildTransition(g_dense);
  la::DynamicRowMatrix q_store = graph::BuildTransition(g_store);
  DenseMatrix s_dense = simrank::BatchMatrix(graph, EngineOptions());
  ScoreStore s_store((DenseMatrix(s_dense)));

  // Split the stream into three batches with a publish (pinned view)
  // between them, as the serving layer would.
  std::vector<ScoreStore::View> pinned;
  const std::size_t third = updates.size() / 3;
  for (std::size_t part = 0; part < 3; ++part) {
    const std::size_t lo = part * third;
    const std::size_t hi = part == 2 ? updates.size() : lo + third;
    std::vector<graph::EdgeUpdate> batch(updates.begin() + lo,
                                         updates.begin() + hi);
    ASSERT_TRUE(
        dense_engine.ApplyBatch(batch, &g_dense, &q_dense, &s_dense).ok());
    ASSERT_TRUE(
        store_engine.ApplyBatch(batch, &g_store, &q_store, &s_store).ok());
    pinned.push_back(s_store.Publish());
    ASSERT_TRUE(BitwiseEqual(s_dense, s_store.ToDense()))
        << "divergence after batch " << part;
  }
  EXPECT_EQ(dense_engine.last_group_count(), store_engine.last_group_count());
}

TEST(ScoreStoreEngineEquivalence, DynamicSimRankMatchesDenseReference) {
  // End-to-end: the ScoreStore-backed index (with publishes interleaved)
  // stays bitwise identical to a dense-matrix replica driven by the same
  // engine, for every UpdateAlgorithm.
  auto stream_seed = graph::ErdosRenyiGnm(16, 44, 31);
  ASSERT_TRUE(stream_seed.ok());
  auto graph = graph::MaterializeGraph(16, stream_seed.value());

  for (auto algorithm :
       {core::UpdateAlgorithm::kIncSR, core::UpdateAlgorithm::kIncUSR}) {
    auto index = core::DynamicSimRank::Create(graph, EngineOptions(),
                                              algorithm);
    ASSERT_TRUE(index.ok());
    DenseMatrix s_ref = index->scores().ToDense();
    graph::DynamicDiGraph g_ref = graph;
    la::DynamicRowMatrix q_ref = graph::BuildTransition(g_ref);
    core::IncSrEngine ref_engine(index->options());

    auto updates = MixedStream(graph, 8, 5, 37);
    std::vector<ScoreStore::View> pinned;
    for (const graph::EdgeUpdate& u : updates) {
      ASSERT_TRUE(index->ApplyUpdate(u).ok());
      pinned.push_back(index->mutable_score_store()->Publish());
      if (algorithm == core::UpdateAlgorithm::kIncSR) {
        ASSERT_TRUE(ref_engine.ApplyUpdate(u, &g_ref, &q_ref, &s_ref).ok());
      } else {
        ASSERT_TRUE(core::IncUsrApplyUpdate(u, index->options(), &g_ref,
                                            &q_ref, &s_ref)
                        .ok());
      }
      ASSERT_TRUE(BitwiseEqual(index->scores().ToDense(), s_ref));
    }
  }
}

// ---- Concurrency: pinned snapshot byte-stability under COW ---------------

// The serving-layer contract reproduced at store level: a reader pins a
// view while the writer keeps COW-mutating rows and publishing epochs.
// The pinned bytes must never change. TSan-clean: views cross threads via
// a mutex, shards are immutable once shared.
TEST(ScoreStoreConcurrency, PinnedViewStaysByteStableUnderWriter) {
  const std::size_t n = 32;
  ScoreStore store(TestMatrix(n, n, /*seed=*/41));

  std::mutex mu;
  std::shared_ptr<const ScoreStore::View> latest =
      std::make_shared<const ScoreStore::View>(store.Publish());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checks{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + static_cast<std::uint64_t>(r));
      // do-while: at least one pinned-view check per reader even if the
      // writer outruns reader scheduling on a loaded single-core box.
      do {
        std::shared_ptr<const ScoreStore::View> pinned;
        {
          std::lock_guard<std::mutex> lock(mu);
          pinned = latest;
        }
        // Checksum the pinned view twice with writer activity in between;
        // any COW bug that mutated shared bytes diverges the sums.
        double sum1 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double* row = pinned->RowPtr(i);
          for (std::size_t j = 0; j < n; ++j) sum1 += row[j];
        }
        double sum2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double* row = pinned->RowPtr(i);
          for (std::size_t j = 0; j < n; ++j) sum2 += row[j];
        }
        INCSR_CHECK(sum1 == sum2, "pinned view bytes changed");
        checks.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  Rng rng(55);
  for (int epoch = 0; epoch < 400; ++epoch) {
    for (int w = 0; w < 8; ++w) {
      const auto i = static_cast<std::size_t>(rng.NextBounded(n));
      const auto j = static_cast<std::size_t>(rng.NextBounded(n));
      store.MutableRowPtr(i)[j] = rng.NextDouble();
    }
    auto next = std::make_shared<const ScoreStore::View>(store.Publish());
    std::lock_guard<std::mutex> lock(mu);
    latest = std::move(next);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(checks.load(), 0u);
  EXPECT_GT(store.stats().rows_copied, 0u);
}

}  // namespace
}  // namespace incsr::la
