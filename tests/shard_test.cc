// Tests for the component-sharded serving layer (src/shard/): the
// deterministic ShardPlan partitioner, and the central property of the
// subsystem — a ShardedSimRankService over a multi-component graph is
// observationally BITWISE identical to a single SimRankService at every
// shard count, across mixed insert/delete streams, Zipf-skewed queries,
// and the component-merge path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/dynamic_simrank.h"
#include "graph/components.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/update_stream.h"
#include "service/simrank_service.h"
#include "shard/shard_plan.h"
#include "shard/sharded_service.h"

namespace incsr::shard {
namespace {

// ---- Fixture: a multi-component graph with INTERLEAVED global ids --------
//
// Components must not be contiguous id ranges, or the remap tables would
// never be exercised: global ids are dealt round-robin across components,
// so every component's nodes are spread over the whole id space.
struct MultiComponentGraph {
  graph::DynamicDiGraph graph;
  // component_nodes[c][local] = global id (ascending in local).
  std::vector<std::vector<graph::NodeId>> component_nodes;
};

MultiComponentGraph BuildMultiComponentGraph(
    const std::vector<std::size_t>& sizes,
    const std::vector<std::size_t>& edge_counts, std::uint64_t seed) {
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  MultiComponentGraph out;
  out.graph = graph::DynamicDiGraph(total);
  out.component_nodes.resize(sizes.size());
  // Round-robin id deal: global id g belongs to the first component that
  // still needs nodes at turn g % #components.
  std::vector<std::size_t> remaining = sizes;
  std::size_t c = 0;
  for (std::size_t g = 0; g < total; ++g) {
    while (remaining[c] == 0) c = (c + 1) % sizes.size();
    out.component_nodes[c].push_back(static_cast<graph::NodeId>(g));
    --remaining[c];
    c = (c + 1) % sizes.size();
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    auto stream = graph::ErdosRenyiGnm(sizes[i], edge_counts[i], seed + i);
    EXPECT_TRUE(stream.ok());
    for (const graph::TimestampedEdge& te : stream.value()) {
      EXPECT_TRUE(out.graph
                      .AddEdge(out.component_nodes[i][static_cast<std::size_t>(
                                   te.edge.src)],
                               out.component_nodes[i][static_cast<std::size_t>(
                                   te.edge.dst)])
                      .ok());
    }
  }
  return out;
}

// Mixed insert/delete stream confined to components (so no merges are
// triggered), interleaved across components. Deletions and insertions are
// sampled from disjoint edge sets, so the stream is valid in any order.
std::vector<graph::EdgeUpdate> BuildMixedStream(
    const MultiComponentGraph& mc, std::size_t per_component_updates,
    std::uint64_t seed) {
  std::vector<std::vector<graph::EdgeUpdate>> per_component;
  Rng rng(seed);
  for (const std::vector<graph::NodeId>& nodes : mc.component_nodes) {
    // Re-derive the component subgraph to sample valid updates.
    graph::DynamicDiGraph sub(nodes.size());
    for (std::size_t l = 0; l < nodes.size(); ++l) {
      for (graph::NodeId dst : mc.graph.OutNeighbors(nodes[l])) {
        auto it = std::lower_bound(nodes.begin(), nodes.end(), dst);
        EXPECT_TRUE(it != nodes.end() && *it == dst) << "edge leaves component";
        EXPECT_TRUE(sub.AddEdge(static_cast<graph::NodeId>(l),
                                static_cast<graph::NodeId>(it - nodes.begin()))
                        .ok());
      }
    }
    const std::size_t deletions =
        std::min(sub.num_edges() / 2, per_component_updates / 2);
    const std::size_t insertions = per_component_updates - deletions;
    auto del = graph::SampleDeletions(sub, deletions, &rng);
    auto ins = graph::SampleInsertions(sub, insertions, &rng);
    EXPECT_TRUE(del.ok() && ins.ok());
    std::vector<graph::EdgeUpdate> mixed;
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < del->size() || b < ins->size()) {
      if (a < del->size()) mixed.push_back((*del)[a++]);
      if (b < ins->size()) mixed.push_back((*ins)[b++]);
    }
    for (graph::EdgeUpdate& u : mixed) {  // local -> global
      u.src = nodes[static_cast<std::size_t>(u.src)];
      u.dst = nodes[static_cast<std::size_t>(u.dst)];
    }
    per_component.push_back(std::move(mixed));
  }
  std::vector<graph::EdgeUpdate> interleaved;
  for (std::size_t k = 0;; ++k) {
    bool any = false;
    for (const auto& stream : per_component) {
      if (k < stream.size()) {
        interleaved.push_back(stream[k]);
        any = true;
      }
    }
    if (!any) break;
  }
  return interleaved;
}

// Tiny Zipf(θ) sampler over [0, n) — CDF + binary search, like the bench
// harness's, so query skew concentrates on low ranks.
class Zipf {
 public:
  Zipf(std::size_t n, double theta) : cdf_(n) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      cdf_[r] = total;
    }
    for (std::size_t r = 0; r < n; ++r) cdf_[r] /= total;
  }
  std::size_t Next(Rng* rng) const {
    const double u = rng->NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

service::ServiceOptions UnitServiceOptions(
    std::size_t topk_index_capacity = 4096) {
  service::ServiceOptions options;
  options.max_batch = 64;
  options.topk_index_capacity = topk_index_capacity;
  return options;
}

// The single-service reference runs with the per-node top-k index OFF, so
// every comparison below is an index-path vs row-scan-oracle cross-check
// on top of the shard-count invariance.
Result<std::unique_ptr<service::SimRankService>> MakeSingleService(
    const graph::DynamicDiGraph& graph,
    core::UpdateAlgorithm algorithm = core::UpdateAlgorithm::kIncSR) {
  auto index = core::DynamicSimRank::Create(graph, {}, algorithm);
  if (!index.ok()) return index.status();
  return service::SimRankService::Create(std::move(index).value(),
                                         UnitServiceOptions(0));
}

// Bitwise comparison of every observable query surface. `probes` bounds
// the number of Zipf-sampled TopKFor query nodes.
void ExpectIdenticalViews(const service::SimRankService& single,
                          const ShardedSimRankService& sharded, std::size_t n,
                          Rng* rng, std::size_t probes) {
  // Score: all pairs, exact FP equality (cross-shard must be exact 0.0).
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      auto want = single.Score(static_cast<graph::NodeId>(a),
                               static_cast<graph::NodeId>(b));
      auto got = sharded.Score(static_cast<graph::NodeId>(a),
                               static_cast<graph::NodeId>(b));
      ASSERT_TRUE(want.ok() && got.ok());
      ASSERT_EQ(want.value(), got.value()) << "Score(" << a << "," << b << ")";
    }
  }
  // TopKFor under Zipf-skewed query nodes, k from 0 through past n so the
  // zero-padding merge and the k-edge cases are exercised.
  Zipf zipf(n, 1.0);
  for (std::size_t p = 0; p < probes; ++p) {
    const auto node = static_cast<graph::NodeId>(zipf.Next(rng));
    for (std::size_t k : {std::size_t{0}, std::size_t{3}, std::size_t{10},
                          n + 5}) {
      auto want = single.TopKFor(node, k);
      auto got = sharded.TopKFor(node, k);
      ASSERT_TRUE(want.ok() && got.ok());
      ASSERT_EQ(want.value(), got.value())
          << "TopKFor(" << node << ", " << k << ")";
    }
  }
  // TopKPairs including k past every positive pair, so the cross-shard
  // zero-pair generator's ordering is fully compared too.
  for (std::size_t k : {std::size_t{5}, std::size_t{25}, n * n}) {
    ASSERT_EQ(single.TopKPairs(k), sharded.TopKPairs(k)) << "TopKPairs " << k;
  }
}

// Drives the same stream through a single service and a sharded one in
// deterministic unit batches (Flush after every Submit pins the batch —
// and therefore the coalescing — boundaries), comparing all query
// surfaces along the way and at the end.
void RunShardCountInvariance(std::size_t num_shards,
                             core::UpdateAlgorithm algorithm,
                             std::size_t topk_index_capacity = 4096) {
  MultiComponentGraph mc =
      BuildMultiComponentGraph({12, 9, 7, 5}, {40, 26, 18, 10}, 77);
  const std::size_t n = mc.graph.num_nodes();
  std::vector<graph::EdgeUpdate> stream = BuildMixedStream(mc, 8, 1234);
  ASSERT_FALSE(stream.empty());

  auto single = MakeSingleService(mc.graph, algorithm);
  ASSERT_TRUE(single.ok());
  ShardedServiceOptions sharded_options;
  sharded_options.num_shards = num_shards;
  sharded_options.per_shard = UnitServiceOptions(topk_index_capacity);
  auto sharded = ShardedSimRankService::Create(mc.graph, {}, sharded_options,
                                               algorithm);
  ASSERT_TRUE(sharded.ok());

  Rng rng(99);
  ExpectIdenticalViews(**single, **sharded, n, &rng, /*probes=*/3);
  std::size_t step = 0;
  for (const graph::EdgeUpdate& update : stream) {
    ASSERT_TRUE((*single)->Submit(update).ok());
    ASSERT_TRUE((*single)->Flush().ok());
    ASSERT_TRUE((*sharded)->Submit(update).ok());
    ASSERT_TRUE((*sharded)->Flush().ok());
    if (++step % 7 == 0) {
      ExpectIdenticalViews(**single, **sharded, n, &rng, /*probes=*/2);
    }
  }
  ExpectIdenticalViews(**single, **sharded, n, &rng, /*probes=*/5);

  ShardedStats stats = (*sharded)->stats();
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.total.applied, (*single)->stats().applied);
  EXPECT_EQ(stats.active_shards,
            std::min(num_shards, mc.component_nodes.size()));
  // Aggregated epoch is the max per-shard epoch, never a sum (regression
  // for the old field-wise += that produced meaningless epoch totals).
  std::uint64_t max_epoch = 0;
  std::uint64_t index_served = 0;
  std::uint64_t index_fallbacks = 0;
  for (const ShardedStats::ShardEntry& entry : stats.per_shard) {
    max_epoch = std::max(max_epoch, entry.stats.epoch);
    index_served += entry.stats.topk_index_served;
    index_fallbacks += entry.stats.topk_index_fallbacks;
  }
  EXPECT_EQ(stats.total.epoch, max_epoch);
  // The new index counters flow through the sharded aggregation.
  EXPECT_EQ(stats.total.topk_index_served, index_served);
  EXPECT_EQ(stats.total.topk_index_fallbacks, index_fallbacks);
  if (topk_index_capacity >= n) {
    // Every per-shard entry is complete: the whole cross-shard query load
    // above was served from the index, bitwise equal to the scan oracle.
    EXPECT_GT(stats.total.topk_index_served, 0u);
    EXPECT_EQ(stats.total.topk_index_fallbacks, 0u);
  } else if (topk_index_capacity == 0) {
    EXPECT_EQ(stats.total.topk_index_served, 0u);
    EXPECT_EQ(stats.total.topk_index_fallbacks, 0u);
  } else {
    // Underfull capacity: k = 0 probes serve from the index, larger k
    // probes fall back — both paths ran and stayed bitwise identical.
    EXPECT_GT(stats.total.topk_index_served, 0u);
    EXPECT_GT(stats.total.topk_index_fallbacks, 0u);
  }
}

// ---- ShardPlan -----------------------------------------------------------

TEST(ShardPlan, LocalIdsAscendWithGlobalIdsAndRoundTrip) {
  MultiComponentGraph mc = BuildMultiComponentGraph({6, 5, 4}, {8, 6, 4}, 3);
  ShardPlan plan = ShardPlan::Build(mc.graph, 2);
  ASSERT_EQ(plan.num_shards(), 2u);
  EXPECT_EQ(plan.num_nodes(), mc.graph.num_nodes());
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    const std::vector<graph::NodeId>& nodes = plan.ShardNodes(s);
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
    for (std::size_t l = 0; l < nodes.size(); ++l) {
      EXPECT_EQ(plan.ShardOf(nodes[l]), s);
      EXPECT_EQ(plan.ToLocal(nodes[l]), static_cast<graph::NodeId>(l));
      EXPECT_EQ(plan.ToGlobal(s, static_cast<graph::NodeId>(l)), nodes[l]);
    }
  }
}

TEST(ShardPlan, ComponentsAreNeverSplit) {
  MultiComponentGraph mc = BuildMultiComponentGraph({6, 5, 4, 3}, {8, 6, 4, 3}, 5);
  ShardPlan plan = ShardPlan::Build(mc.graph, 3);
  graph::ComponentDecomposition wcc =
      graph::WeaklyConnectedComponents(mc.graph);
  for (std::size_t v = 0; v < mc.graph.num_nodes(); ++v) {
    for (std::size_t w = 0; w < mc.graph.num_nodes(); ++w) {
      if (wcc.component_of[v] == wcc.component_of[w]) {
        EXPECT_EQ(plan.ShardOf(static_cast<graph::NodeId>(v)),
                  plan.ShardOf(static_cast<graph::NodeId>(w)));
      }
    }
  }
}

TEST(ShardPlan, DeterministicAndBalanced) {
  MultiComponentGraph mc =
      BuildMultiComponentGraph({10, 9, 8, 3, 2}, {20, 16, 12, 2, 1}, 11);
  ShardPlan a = ShardPlan::Build(mc.graph, 3);
  ShardPlan b = ShardPlan::Build(mc.graph, 3);
  ASSERT_EQ(a.num_shards(), b.num_shards());
  for (std::size_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_EQ(a.ShardNodes(s), b.ShardNodes(s));
  }
  // Sizes {10, 9, 8, 3, 2} across 3 shards: greedy by descending size
  // gives loads {10}, {9, 2}, {8, 3} — max/min spread of 1.
  std::vector<std::size_t> loads;
  for (std::size_t s = 0; s < a.num_shards(); ++s) {
    loads.push_back(a.ShardNodes(s).size());
  }
  EXPECT_EQ(*std::max_element(loads.begin(), loads.end()) -
                *std::min_element(loads.begin(), loads.end()),
            1u);
}

TEST(ShardPlan, ShardCountClampsToComponentCount) {
  MultiComponentGraph mc = BuildMultiComponentGraph({4, 3}, {4, 3}, 2);
  ShardPlan plan = ShardPlan::Build(mc.graph, 8);
  EXPECT_EQ(plan.num_shards(), 2u);
}

TEST(ShardPlan, SubgraphPreservesStructure) {
  MultiComponentGraph mc = BuildMultiComponentGraph({5, 4}, {7, 5}, 9);
  ShardPlan plan = ShardPlan::Build(mc.graph, 2);
  std::size_t edges = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    graph::DynamicDiGraph sub = plan.BuildSubgraph(mc.graph, s);
    edges += sub.num_edges();
    for (const graph::Edge& e : sub.Edges()) {
      EXPECT_TRUE(mc.graph.HasEdge(plan.ToGlobal(s, e.src),
                                   plan.ToGlobal(s, e.dst)));
    }
  }
  EXPECT_EQ(edges, mc.graph.num_edges());
}

TEST(ShardPlan, MergeShardsResortsAndEmptiesSource) {
  MultiComponentGraph mc = BuildMultiComponentGraph({4, 3}, {4, 3}, 6);
  ShardPlan plan = ShardPlan::Build(mc.graph, 2);
  std::vector<graph::NodeId> all = plan.ShardNodes(0);
  all.insert(all.end(), plan.ShardNodes(1).begin(), plan.ShardNodes(1).end());
  std::sort(all.begin(), all.end());
  plan.MergeShards(0, 1);
  EXPECT_EQ(plan.ShardNodes(0), all);
  EXPECT_TRUE(plan.ShardNodes(1).empty());
  EXPECT_EQ(plan.num_active_shards(), 1u);
  for (std::size_t l = 0; l < all.size(); ++l) {
    EXPECT_EQ(plan.ToLocal(all[l]), static_cast<graph::NodeId>(l));
    EXPECT_EQ(plan.ShardOf(all[l]), 0u);
  }
}

// ---- Sharded service: bitwise shard-count invariance ---------------------

TEST(ShardedService, BitwiseIdenticalToSingleServiceOneShard) {
  RunShardCountInvariance(1, core::UpdateAlgorithm::kIncSR);
}

TEST(ShardedService, BitwiseIdenticalToSingleServiceTwoShards) {
  RunShardCountInvariance(2, core::UpdateAlgorithm::kIncSR);
}

TEST(ShardedService, BitwiseIdenticalToSingleServiceFourShards) {
  RunShardCountInvariance(4, core::UpdateAlgorithm::kIncSR);
}

// The per-node index underfull at capacity 2: most probes (k = 3, 10,
// n + 5) fall back to row scans inside the shards, and the zero-pad merge
// must stay bitwise identical across the mixed served/fallback sources.
TEST(ShardedService, BitwiseIdenticalWithUnderfullIndex) {
  RunShardCountInvariance(2, core::UpdateAlgorithm::kIncSR,
                          /*topk_index_capacity=*/2);
  RunShardCountInvariance(4, core::UpdateAlgorithm::kIncSR,
                          /*topk_index_capacity=*/2);
}

// Index disabled entirely: the pre-index row-scan path, still invariant.
TEST(ShardedService, BitwiseIdenticalWithIndexDisabled) {
  RunShardCountInvariance(2, core::UpdateAlgorithm::kIncSR,
                          /*topk_index_capacity=*/0);
}

TEST(ShardedService, BitwiseIdenticalUnderIncUsr) {
  // Smaller fixture: Inc-uSR is dense O(n²) per update.
  MultiComponentGraph mc = BuildMultiComponentGraph({7, 5}, {12, 7}, 21);
  const std::size_t n = mc.graph.num_nodes();
  std::vector<graph::EdgeUpdate> stream = BuildMixedStream(mc, 4, 8);
  auto single = MakeSingleService(mc.graph, core::UpdateAlgorithm::kIncUSR);
  ASSERT_TRUE(single.ok());
  ShardedServiceOptions options;
  options.num_shards = 2;
  auto sharded = ShardedSimRankService::Create(
      mc.graph, {}, options, core::UpdateAlgorithm::kIncUSR);
  ASSERT_TRUE(sharded.ok());
  for (const graph::EdgeUpdate& update : stream) {
    ASSERT_TRUE((*single)->Submit(update).ok());
    ASSERT_TRUE((*single)->Flush().ok());
    ASSERT_TRUE((*sharded)->Submit(update).ok());
    ASSERT_TRUE((*sharded)->Flush().ok());
  }
  Rng rng(4);
  ExpectIdenticalViews(**single, **sharded, n, &rng, /*probes=*/3);
}

// ---- Component merge path ------------------------------------------------

TEST(ShardedService, CrossShardInsertMergesAndStaysIdentical) {
  MultiComponentGraph mc = BuildMultiComponentGraph({9, 7, 5}, {24, 15, 8}, 31);
  const std::size_t n = mc.graph.num_nodes();
  auto single = MakeSingleService(mc.graph);
  ASSERT_TRUE(single.ok());
  ShardedServiceOptions options;
  options.num_shards = 3;
  auto sharded = ShardedSimRankService::Create(mc.graph, {}, options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ((*sharded)->stats().active_shards, 3u);

  Rng rng(17);
  auto drive = [&](const graph::EdgeUpdate& update) {
    ASSERT_TRUE((*single)->Submit(update).ok());
    ASSERT_TRUE((*single)->Flush().ok());
    ASSERT_TRUE((*sharded)->Submit(update).ok());
    ASSERT_TRUE((*sharded)->Flush().ok());
  };

  // A few in-component updates, then an edge JOINING components 0 and 1
  // (their smallest global members), then further updates inside the
  // merged component — which must route to the merged shard.
  std::vector<graph::EdgeUpdate> warmup = BuildMixedStream(mc, 3, 55);
  for (const graph::EdgeUpdate& u : warmup) drive(u);

  const graph::NodeId a = mc.component_nodes[0][0];
  const graph::NodeId b = mc.component_nodes[1][0];
  ASSERT_FALSE(mc.graph.HasEdge(a, b));
  drive({graph::UpdateKind::kInsert, a, b});

  ShardedStats after_merge = (*sharded)->stats();
  EXPECT_EQ(after_merge.merges, 1u);
  EXPECT_EQ(after_merge.active_shards, 2u);
  const std::size_t merged_n =
      mc.component_nodes[0].size() + mc.component_nodes[1].size();
  EXPECT_EQ(after_merge.merge_rebuild_rows, merged_n);
  EXPECT_EQ(after_merge.merge_rebuild_bytes,
            merged_n * merged_n * sizeof(double));
  ExpectIdenticalViews(**single, **sharded, n, &rng, /*probes=*/3);

  // Cross-component edges inside the merged shard are ordinary updates
  // now (no further merge), and the whole surface stays identical.
  const graph::NodeId c = mc.component_nodes[0][1];
  const graph::NodeId d = mc.component_nodes[1][1];
  drive({graph::UpdateKind::kInsert, d, c});
  drive({graph::UpdateKind::kDelete, a, b});
  EXPECT_EQ((*sharded)->stats().merges, 1u);
  ExpectIdenticalViews(**single, **sharded, n, &rng, /*probes=*/3);
}

TEST(ShardedService, CrossShardDeleteIsCountedNotApplied) {
  MultiComponentGraph mc = BuildMultiComponentGraph({5, 4}, {7, 5}, 13);
  auto single = MakeSingleService(mc.graph);
  ASSERT_TRUE(single.ok());
  ShardedServiceOptions options;
  options.num_shards = 2;
  auto sharded = ShardedSimRankService::Create(mc.graph, {}, options);
  ASSERT_TRUE(sharded.ok());

  const graph::EdgeUpdate bogus{graph::UpdateKind::kDelete,
                                mc.component_nodes[0][0],
                                mc.component_nodes[1][0]};
  ASSERT_TRUE((*single)->Submit(bogus).ok());
  ASSERT_TRUE((*single)->Flush().ok());
  ASSERT_TRUE((*sharded)->Submit(bogus).ok());
  ASSERT_TRUE((*sharded)->Flush().ok());

  EXPECT_EQ((*single)->stats().failed, 1u);
  ShardedStats stats = (*sharded)->stats();
  EXPECT_EQ(stats.router_failed, 1u);
  EXPECT_EQ(stats.total.failed, 1u);
  EXPECT_EQ(stats.merges, 0u);
  // Router drops keep the accounting identity the single service has.
  EXPECT_EQ(stats.total.submitted, stats.total.applied + stats.total.rejected +
                                       stats.total.failed +
                                       stats.total.queue_depth);
  Rng rng(2);
  ExpectIdenticalViews(**single, **sharded, mc.graph.num_nodes(), &rng, 2);
}

// ---- Deterministic tie-breaking (regression for the merge contract) ------

TEST(ShardedService, TieBreakIsAscendingIdAcrossShards) {
  // Two structurally identical components → identical positive scores →
  // cross-shard ties, plus all-zero tails. The contract (descending
  // score, then ascending node/pair id) must hold globally.
  graph::DynamicDiGraph g(8);
  // Component A over {0, 2, 4}: 0 -> 2 and 0 -> 4 give nodes 2 and 4 the
  // common in-neighbor 0, so s(2,4) = C·s(0,0) > 0.
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  // Component B over {1, 3, 5}: mirror image.
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(1, 5).ok());
  // {6}, {7} are isolated singletons.
  auto single = MakeSingleService(g);
  ASSERT_TRUE(single.ok());
  ShardedServiceOptions options;
  options.num_shards = 4;
  auto sharded = ShardedSimRankService::Create(g, {}, options);
  ASSERT_TRUE(sharded.ok());

  // s(2,4) == s(3,5) exactly (identical arithmetic): the pair with the
  // smaller (a, b) must come first in both implementations.
  auto s24 = (*sharded)->Score(2, 4);
  auto s35 = (*sharded)->Score(3, 5);
  ASSERT_TRUE(s24.ok() && s35.ok());
  ASSERT_EQ(s24.value(), s35.value());
  ASSERT_GT(s24.value(), 0.0);
  std::vector<core::ScoredPair> pairs = (*sharded)->TopKPairs(4);
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ((pairs[0]), (core::ScoredPair{2, 4, s24.value()}));
  EXPECT_EQ((pairs[1]), (core::ScoredPair{3, 5, s35.value()}));
  // The zero-score tail is ascending (a, b): (0, 1) is the first zero pair.
  EXPECT_EQ((pairs[2]), (core::ScoredPair{0, 1, 0.0}));
  EXPECT_EQ((pairs[3]), (core::ScoredPair{0, 2, 0.0}));
  EXPECT_EQ(pairs, (*single)->TopKPairs(4));

  // TopKFor on an isolated node: every score is 0, so the result is the
  // ascending id order of all other nodes, identically in both.
  auto want = (*single)->TopKFor(6, 7);
  auto got = (*sharded)->TopKFor(6, 7);
  ASSERT_TRUE(want.ok() && got.ok());
  ASSERT_EQ(got->size(), 7u);
  for (std::size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i].b, static_cast<graph::NodeId>(i < 6 ? i : i + 1));
    EXPECT_EQ((*got)[i].score, 0.0);
  }
  EXPECT_EQ(want.value(), got.value());
}

// ---- Ambient-id-space invariance of the update kernels --------------------

TEST(ShardedInvariance, MultiChunkSupportsStayBitwiseIdentical) {
  // Large, dense components so the engine's chunk-parallel expansions run
  // over supports well past one chunk (kSparseExpandGrain = 128 entries).
  // The chunk geometry must be a function of the SUPPORT size only: if it
  // depended on the ambient node count, the shard-local run (n = 150)
  // would associate its FP sums differently from the full-graph run
  // (n = 300) and the scores would drift in the last bits.
  MultiComponentGraph mc = BuildMultiComponentGraph({150, 150}, {1200, 1150}, 41);
  const std::size_t n = mc.graph.num_nodes();
  // Same explicit batch_iterations everywhere: invariance, not
  // convergence, is under test — keep the solve cheap.
  constexpr int kBatchIterations = 12;
  auto full = core::DynamicSimRank::Create(
      mc.graph, {}, core::UpdateAlgorithm::kIncSR, kBatchIterations);
  ASSERT_TRUE(full.ok());
  ShardPlan plan = ShardPlan::Build(mc.graph, 2);
  ASSERT_EQ(plan.num_active_shards(), 2u);
  std::vector<core::DynamicSimRank> shards;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    auto index = core::DynamicSimRank::Create(plan.BuildSubgraph(mc.graph, s),
                                              {}, core::UpdateAlgorithm::kIncSR,
                                              kBatchIterations);
    ASSERT_TRUE(index.ok());
    shards.push_back(std::move(index).value());
  }

  // Unit updates through both, then one coalesced multi-change group so
  // the generalized row-update path (z gather + dense eta expansion) is
  // exercised too.
  std::vector<graph::EdgeUpdate> stream = BuildMixedStream(mc, 6, 7);
  ASSERT_FALSE(stream.empty());
  for (const graph::EdgeUpdate& u : stream) {
    ASSERT_TRUE(full->ApplyUpdate(u).ok());
    const std::size_t s = plan.ShardOf(u.dst);
    ASSERT_TRUE(shards[s]
                    .ApplyUpdate({u.kind, plan.ToLocal(u.src),
                                  plan.ToLocal(u.dst)})
                    .ok());
  }
  // Coalesced group: several inserts onto one target node of component 0.
  const std::vector<graph::NodeId>& comp = mc.component_nodes[0];
  const graph::NodeId target = comp[0];
  std::vector<graph::EdgeUpdate> group;
  for (std::size_t i = comp.size() - 4; i < comp.size(); ++i) {
    if (!full->graph().HasEdge(comp[i], target)) {
      group.push_back({graph::UpdateKind::kInsert, comp[i], target});
    }
  }
  ASSERT_GE(group.size(), 2u);
  ASSERT_TRUE(full->ApplyBatchCoalesced(group).ok());
  std::vector<graph::EdgeUpdate> local_group = group;
  const std::size_t ts = plan.ShardOf(target);
  for (graph::EdgeUpdate& u : local_group) {
    u.src = plan.ToLocal(u.src);
    u.dst = plan.ToLocal(u.dst);
  }
  ASSERT_TRUE(shards[ts].ApplyBatchCoalesced(local_group).ok());

  // Every entry bitwise: within-shard equals the shard's local entry,
  // cross-shard is exactly 0.0 in the full matrix.
  for (std::size_t a = 0; a < n; ++a) {
    const auto ga = static_cast<graph::NodeId>(a);
    const std::size_t sa = plan.ShardOf(ga);
    for (std::size_t b = 0; b < n; ++b) {
      const auto gb = static_cast<graph::NodeId>(b);
      const double want = full->Score(ga, gb);
      if (plan.ShardOf(gb) == sa) {
        ASSERT_EQ(want, shards[sa].Score(plan.ToLocal(ga), plan.ToLocal(gb)))
            << "entry (" << a << "," << b << ")";
      } else {
        ASSERT_EQ(want, 0.0) << "cross entry (" << a << "," << b << ")";
      }
    }
  }
}

}  // namespace
}  // namespace incsr::shard
