// Umbrella header for the incsr library — exact incremental SimRank on
// link-evolving graphs (reproduction of Yu, Lin & Zhang, ICDE 2014).
//
// The primary entry point is incsr::core::DynamicSimRank, which maintains
// all-pairs SimRank under edge insertions/deletions via the paper's
// Inc-SR/Inc-uSR algorithms. Batch algorithms, the Inc-SVD baseline,
// generators, dataset stand-ins, and evaluation metrics are exposed for
// experimentation.
#ifndef INCSR_INCSR_H_
#define INCSR_INCSR_H_

#include "common/memory.h"       // IWYU pragma: export
#include "common/rng.h"          // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/scheduler.h"  // IWYU pragma: export
#include "common/timer.h"        // IWYU pragma: export
#include "core/dynamic_simrank.h"  // IWYU pragma: export
#include "core/inc_sr.h"         // IWYU pragma: export
#include "core/inc_usr.h"        // IWYU pragma: export
#include "core/rank_one_update.h"  // IWYU pragma: export
#include "core/update_seed.h"    // IWYU pragma: export
#include "datasets/datasets.h"   // IWYU pragma: export
#include "eval/metrics.h"        // IWYU pragma: export
#include "graph/components.h"    // IWYU pragma: export
#include "graph/digraph.h"       // IWYU pragma: export
#include "graph/edge_list_io.h"  // IWYU pragma: export
#include "graph/generators.h"    // IWYU pragma: export
#include "graph/snapshots.h"     // IWYU pragma: export
#include "graph/transition.h"    // IWYU pragma: export
#include "graph/update_stream.h" // IWYU pragma: export
#include "incsvd/inc_svd.h"      // IWYU pragma: export
#include "incsvd/svd_simrank.h"  // IWYU pragma: export
#include "la/dense_matrix.h"     // IWYU pragma: export
#include "la/score_store.h"      // IWYU pragma: export
#include "la/sparse_matrix.h"    // IWYU pragma: export
#include "la/svd.h"              // IWYU pragma: export
#include "la/vector.h"           // IWYU pragma: export
#include "net/client.h"          // IWYU pragma: export
#include "net/replication.h"     // IWYU pragma: export
#include "net/server.h"          // IWYU pragma: export
#include "net/socket.h"          // IWYU pragma: export
#include "net/wire.h"            // IWYU pragma: export
#include "obs/histogram.h"       // IWYU pragma: export
#include "obs/trace.h"           // IWYU pragma: export
#include "obs/trace_analysis.h"  // IWYU pragma: export
#include "service/query_cache.h"     // IWYU pragma: export
#include "service/simrank_service.h" // IWYU pragma: export
#include "shard/shard_plan.h"        // IWYU pragma: export
#include "shard/sharded_service.h"   // IWYU pragma: export
#include "simrank/batch_matrix.h"        // IWYU pragma: export
#include "simrank/batch_naive.h"         // IWYU pragma: export
#include "simrank/batch_partial_sums.h"  // IWYU pragma: export
#include "simrank/options.h"             // IWYU pragma: export

#endif  // INCSR_INCSR_H_
